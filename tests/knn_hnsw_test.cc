// Tests for the §IV-D extensions: GPU HNSW construction (level-by-level
// GGraphCon with the id-shuffle trick) and the NN-Descent KNN-graph builder.

#include <gtest/gtest.h>

#include "core/ganns_search.h"
#include "core/hnsw_gpu.h"
#include "core/knn_graph.h"
#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "graph/hnsw.h"

namespace ganns {
namespace core {
namespace {

class ExtensionTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 1200;
  static constexpr std::size_t kK = 10;

  void SetUp() override {
    base_ = std::make_unique<data::Dataset>(
        data::GenerateBase(data::PaperDataset("SIFT1M"), kN, 6));
    queries_ = std::make_unique<data::Dataset>(
        data::GenerateQueries(data::PaperDataset("SIFT1M"), 30, kN, 6));
    truth_ = std::make_unique<data::GroundTruth>(
        data::BruteForceKnn(*base_, *queries_, kK));
  }

  gpusim::Device device_;
  std::unique_ptr<data::Dataset> base_;
  std::unique_ptr<data::Dataset> queries_;
  std::unique_ptr<data::GroundTruth> truth_;
};

TEST_F(ExtensionTest, GpuHnswLayerMembershipMatchesSampledLevels) {
  graph::HnswParams hnsw;
  GpuBuildParams gpu_params;
  gpu_params.num_groups = 8;
  const GpuHnswBuildResult built =
      BuildHnswGGraphCon(device_, *base_, hnsw, gpu_params);

  const auto levels = graph::HnswGraph::SampleLevels(kN, hnsw);
  for (std::size_t v = 0; v < kN; ++v) {
    EXPECT_EQ(built.graph.level(static_cast<VertexId>(v)), levels[v]);
    // A vertex has edges on a layer only if it belongs to that layer.
    for (int l = levels[v] + 1; l <= built.graph.max_level(); ++l) {
      EXPECT_EQ(built.graph.layer(l).Degree(static_cast<VertexId>(v)), 0u);
    }
  }
  // The entry point is on the top layer.
  EXPECT_EQ(built.graph.level(built.graph.entry()), built.graph.max_level());
}

TEST_F(ExtensionTest, GpuHnswQualityMatchesCpuHnsw) {
  graph::HnswParams hnsw;
  GpuBuildParams gpu_params;
  gpu_params.num_groups = 8;
  const GpuHnswBuildResult gpu =
      BuildHnswGGraphCon(device_, *base_, hnsw, gpu_params);
  const graph::CpuHnswBuildResult cpu = graph::BuildHnswCpu(*base_, hnsw);

  std::vector<std::vector<VertexId>> gpu_results(queries_->size());
  std::vector<std::vector<VertexId>> cpu_results(queries_->size());
  for (std::size_t q = 0; q < queries_->size(); ++q) {
    for (const auto& n :
         graph::SearchHnsw(gpu.graph, *base_, queries_->Point(q), kK, 64)) {
      gpu_results[q].push_back(n.id);
    }
    for (const auto& n :
         graph::SearchHnsw(cpu.graph, *base_, queries_->Point(q), kK, 64)) {
      cpu_results[q].push_back(n.id);
    }
  }
  const double gpu_recall = data::MeanRecall(gpu_results, *truth_, kK);
  const double cpu_recall = data::MeanRecall(cpu_results, *truth_, kK);
  EXPECT_GE(gpu_recall, cpu_recall - 0.05);
  EXPECT_GE(gpu_recall, 0.85);
}

TEST_F(ExtensionTest, GpuHnswSearchableThroughGannsKernelOnLayer0) {
  graph::HnswParams hnsw;
  GpuBuildParams gpu_params;
  gpu_params.num_groups = 8;
  const GpuHnswBuildResult built =
      BuildHnswGGraphCon(device_, *base_, hnsw, gpu_params);

  GannsParams params;
  params.k = kK;
  params.l_n = 64;
  const auto batch = GannsSearchBatch(device_, built.graph.layer(0), *base_,
                                      *queries_, params,
                                      /*block_lanes=*/32, built.graph.entry());
  EXPECT_GE(data::MeanRecall(batch.results, *truth_, kK), 0.85);
}

TEST_F(ExtensionTest, GpuHnswIsDeterministic) {
  graph::HnswParams hnsw;
  GpuBuildParams gpu_params;
  gpu_params.num_groups = 6;
  const GpuHnswBuildResult a =
      BuildHnswGGraphCon(device_, *base_, hnsw, gpu_params);
  gpusim::Device device2;
  const GpuHnswBuildResult b =
      BuildHnswGGraphCon(device2, *base_, hnsw, gpu_params);
  EXPECT_EQ(a.graph.entry(), b.graph.entry());
  for (std::size_t v = 0; v < kN; ++v) {
    const auto ids_a = a.graph.layer(0).Neighbors(static_cast<VertexId>(v));
    const auto ids_b = b.graph.layer(0).Neighbors(static_cast<VertexId>(v));
    for (std::size_t s = 0; s < a.graph.layer(0).d_max(); ++s) {
      ASSERT_EQ(ids_a[s], ids_b[s]);
    }
  }
}

TEST_F(ExtensionTest, KnnGraphConvergesToHighGraphRecall) {
  data::Dataset small("small", base_->dim(), base_->metric());
  for (std::size_t i = 0; i < 400; ++i) {
    small.Append(base_->Point(static_cast<VertexId>(i)));
  }
  KnnGraphParams params;
  params.k = 8;
  const KnnBuildResult built = BuildKnnGraph(device_, small, params);
  EXPECT_GT(built.iterations, 1u);
  EXPECT_GT(built.sim_seconds, 0);
  // NN-Descent on a clustered corpus should recover most true kNN edges.
  EXPECT_GE(KnnGraphRecall(built.graph, small, params.k), 0.80);
  // Far better than the random initialization (recall ~ k/n).
  EXPECT_GE(KnnGraphRecall(built.graph, small, params.k), 10.0 * 8.0 / 400.0);
}

TEST_F(ExtensionTest, KnnGraphRowsAreFullAndValid) {
  data::Dataset small("small", base_->dim(), base_->metric());
  for (std::size_t i = 0; i < 300; ++i) {
    small.Append(base_->Point(static_cast<VertexId>(i)));
  }
  KnnGraphParams params;
  params.k = 6;
  const KnnBuildResult built = BuildKnnGraph(device_, small, params);
  for (std::size_t v = 0; v < small.size(); ++v) {
    EXPECT_EQ(built.graph.Degree(static_cast<VertexId>(v)), params.k);
    const auto ids = built.graph.Neighbors(static_cast<VertexId>(v));
    for (std::size_t s = 0; s < params.k; ++s) {
      EXPECT_NE(ids[s], static_cast<VertexId>(v)) << "self loop at " << v;
      EXPECT_LT(ids[s], small.size());
    }
  }
}

TEST_F(ExtensionTest, KnnGraphMoreIterationsNeverHurt) {
  data::Dataset small("small", base_->dim(), base_->metric());
  for (std::size_t i = 0; i < 300; ++i) {
    small.Append(base_->Point(static_cast<VertexId>(i)));
  }
  KnnGraphParams one_iter;
  one_iter.k = 8;
  one_iter.max_iterations = 1;
  KnnGraphParams many_iter = one_iter;
  many_iter.max_iterations = 12;
  const KnnBuildResult a = BuildKnnGraph(device_, small, one_iter);
  gpusim::Device device2;
  const KnnBuildResult b = BuildKnnGraph(device2, small, many_iter);
  EXPECT_GE(KnnGraphRecall(b.graph, small, 8),
            KnnGraphRecall(a.graph, small, 8));
}

}  // namespace
}  // namespace core
}  // namespace ganns
