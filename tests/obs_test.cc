// Tests for the observability layer (src/obs): name interning, histogram
// arithmetic, cross-thread metric merging, byte-deterministic trace export,
// per-query profiles, and the contract that instrumentation never changes
// simulated cycle totals or search results.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/timer.h"
#include "core/ganns_search.h"
#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "graph/cpu_nsw.h"
#include "graph/diagnostics.h"
#include "obs/hdr_histogram.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "song/song_search.h"

namespace ganns {
namespace obs {
namespace {

/// Saves and restores the process-wide tracing/metrics switches so these
/// tests cannot leak enabled instrumentation into other tests in the binary.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_tracing_ = TracingEnabled();
    was_metrics_ = MetricsEnabled();
    base_ = std::make_unique<data::Dataset>(
        data::GenerateBase(data::PaperDataset("SIFT1M"), 800, 4));
    built_ = std::make_unique<graph::CpuBuildResult>(
        graph::BuildNswCpu(*base_, {}));
    queries_ = std::make_unique<data::Dataset>(data::GenerateQueries(
        data::PaperDataset("SIFT1M"), 40, 800, 4));
  }

  void TearDown() override {
    SetTracingEnabled(was_tracing_);
    SetMetricsEnabled(was_metrics_);
    TraceRecorder::Global().Clear();
  }

  graph::BatchSearchResult RunGanns(
      gpusim::Device& device,
      std::vector<core::GannsQueryProfile>* profiles = nullptr) {
    core::GannsParams params;
    params.k = 10;
    params.l_n = 64;
    return core::GannsSearchBatch(device, built_->graph, *base_, *queries_,
                                  params, 32, 0, profiles);
  }

  std::unique_ptr<data::Dataset> base_;
  std::unique_ptr<graph::CpuBuildResult> built_;
  std::unique_ptr<data::Dataset> queries_;
  bool was_tracing_ = false;
  bool was_metrics_ = false;
};

TEST_F(ObsTest, InternNameIsStableAndRoundTrips) {
  const NameId a = InternName("test.obs.intern_a");
  const NameId b = InternName("test.obs.intern_b");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, InternName("test.obs.intern_a"));
  EXPECT_EQ(NameOf(a), "test.obs.intern_a");
  // Id 0 is reserved for the default argument key so TraceEvent::arg_name's
  // zero-initialized value always resolves correctly.
  EXPECT_EQ(NameOf(0), "value");
}

TEST_F(ObsTest, HistogramBucketsCountsAndQuantiles) {
  const std::uint64_t bounds[] = {1, 2, 4, 8};
  Histogram hist{std::span<const std::uint64_t>(bounds)};
  for (std::uint64_t v : {0u, 1u, 2u, 3u, 4u, 8u, 9u, 100u}) hist.Record(v);

  EXPECT_EQ(hist.count(), 8u);
  EXPECT_EQ(hist.sum(), 127u);
  EXPECT_EQ(hist.max(), 100u);
  EXPECT_EQ(hist.num_buckets(), 5u);
  EXPECT_EQ(hist.bucket_count(0), 2u);  // 0, 1
  EXPECT_EQ(hist.bucket_count(1), 1u);  // 2
  EXPECT_EQ(hist.bucket_count(2), 2u);  // 3, 4
  EXPECT_EQ(hist.bucket_count(3), 1u);  // 8
  EXPECT_EQ(hist.bucket_count(4), 2u);  // 9, 100 overflow
  // Median rank is 4; the cumulative count first reaches 4 in the <=4 bucket.
  EXPECT_EQ(hist.Quantile(0.5), 4u);
  EXPECT_EQ(hist.Quantile(0.25), 1u);
  EXPECT_EQ(hist.Quantile(1.0), 100u);  // past the last bound: the max
  EXPECT_DOUBLE_EQ(hist.mean(), 127.0 / 8.0);

  hist.Reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.sum(), 0u);
  EXPECT_EQ(hist.bucket_count(4), 0u);
}

TEST_F(ObsTest, MetricsMergeExactlyAcrossThreads) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& counter = registry.GetCounter("test.obs.merge_counter");
  Histogram& hist = registry.GetHistogram("test.obs.merge_hist");
  const std::uint64_t counter_before = counter.value();
  const std::uint64_t hist_count_before = hist.count();
  const std::uint64_t hist_sum_before = hist.sum();

  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.Add();
        hist.Record(static_cast<std::uint64_t>(t));
      }
    });
  }
  for (std::thread& w : workers) w.join();

  // Relaxed atomics still merge to exact totals — the property the
  // deterministic JSON export relies on.
  EXPECT_EQ(counter.value() - counter_before, kThreads * kPerThread);
  EXPECT_EQ(hist.count() - hist_count_before, kThreads * kPerThread);
  std::uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) expected_sum += t * kPerThread;
  EXPECT_EQ(hist.sum() - hist_sum_before, expected_sum);
}

TEST_F(ObsTest, MetricsJsonSortedAndRepeatable) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  // Register intentionally out of order; export must sort by name.
  registry.GetCounter("test.obs.zz_counter").Add(2);
  registry.GetCounter("test.obs.aa_counter").Add(1);
  registry.GetGauge("test.obs.gauge").Set(1.5);

  const std::string json = registry.ToJson();
  EXPECT_EQ(json, registry.ToJson());
  const std::size_t a = json.find("test.obs.aa_counter");
  const std::size_t z = json.find("test.obs.zz_counter");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, z);
}

TEST_F(ObsTest, TraceExportIsByteDeterministic) {
  if (!TracingCompiledIn()) GTEST_SKIP() << "built with GANNS_TRACING=OFF";
  SetTracingEnabled(true);

  const auto traced_run = [&] {
    TraceRecorder::Global().Clear();
    gpusim::Device device;  // fresh timeline: cycle stamps start at zero
    RunGanns(device);
    return TraceRecorder::Global().ToJson();
  };
  const std::string first = traced_run();
  const std::string second = traced_run();
  EXPECT_EQ(first, second) << "trace export must be byte-deterministic";

  // The export carries the kernel span, per-SM tracks, and all six GANNS
  // phase spans of Figure 3.
  EXPECT_NE(first.find("\"ganns_search\""), std::string::npos);
  EXPECT_NE(first.find("\"SM 0\""), std::string::npos);
  for (int p = 0; p < core::kNumGannsPhases; ++p) {
    const std::string phase =
        std::string("\"ganns.") + core::GannsPhaseName(p) + "\"";
    EXPECT_NE(first.find(phase), std::string::npos) << phase;
  }
}

TEST_F(ObsTest, WallSpansLandOnHostProcess) {
  if (!TracingCompiledIn()) GTEST_SKIP() << "built with GANNS_TRACING=OFF";
  SetTracingEnabled(true);
  TraceRecorder::Global().Clear();
  { ScopedWallSpan span("test.obs.wall_span"); }
  const std::string json = TraceRecorder::Global().ToJson();
  const std::size_t at = json.find("\"test.obs.wall_span\"");
  ASSERT_NE(at, std::string::npos);
  // Host events live in pid 1, on the wall-clock timeline.
  EXPECT_NE(json.find("\"pid\":1", at), std::string::npos);
}

TEST_F(ObsTest, InstrumentationDoesNotChangeCyclesOrResults) {
  if (!TracingCompiledIn()) GTEST_SKIP() << "built with GANNS_TRACING=OFF";
  SetTracingEnabled(false);
  SetMetricsEnabled(false);
  gpusim::Device plain_device;
  const auto plain = RunGanns(plain_device);

  SetTracingEnabled(true);
  SetMetricsEnabled(true);
  TraceRecorder::Global().Clear();
  gpusim::Device traced_device;
  std::vector<core::GannsQueryProfile> profiles;
  const auto traced = RunGanns(traced_device, &profiles);
  SetTracingEnabled(false);
  SetMetricsEnabled(false);

  // Observation only: identical charged cycles, per-category work, results.
  EXPECT_DOUBLE_EQ(plain.kernel.sim_cycles, traced.kernel.sim_cycles);
  for (std::size_t c = 0; c < plain.kernel.work_cycles.size(); ++c) {
    EXPECT_DOUBLE_EQ(plain.kernel.work_cycles[c], traced.kernel.work_cycles[c])
        << "work category " << c;
  }
  ASSERT_EQ(plain.results.size(), traced.results.size());
  for (std::size_t q = 0; q < plain.results.size(); ++q) {
    EXPECT_EQ(plain.results[q], traced.results[q]) << "query " << q;
  }
  ASSERT_EQ(profiles.size(), queries_->size());
}

TEST_F(ObsTest, GannsProfilesAccountForAllCycles) {
  std::vector<core::GannsQueryProfile> profiles;
  gpusim::Device device;
  RunGanns(device, &profiles);
  ASSERT_EQ(profiles.size(), queries_->size());
  for (const core::GannsQueryProfile& p : profiles) {
    EXPECT_GT(p.hops, 0u);
    EXPECT_GT(p.distance_computations, 0u);
    EXPECT_GE(p.result_occupancy, 10u);  // at least k valid entries
    EXPECT_LE(p.result_occupancy, 64u);  // bounded by l_n
    EXPECT_GT(p.total_cycles, 0.0);
    double phase_sum = 0;
    for (double c : p.phase_cycles) {
      EXPECT_GE(c, 0.0);
      phase_sum += c;
    }
    // The six phases tile the per-query timeline apart from entry setup.
    EXPECT_LE(phase_sum, p.total_cycles);
    EXPECT_GT(phase_sum, 0.9 * p.total_cycles);
  }
}

TEST_F(ObsTest, SongProfilesAccountForAllCycles) {
  song::SongParams params;
  params.k = 10;
  params.queue_size = 64;
  std::vector<song::SongQueryProfile> profiles;
  gpusim::Device device;
  song::SongSearchBatch(device, built_->graph, *base_, *queries_, params, 32,
                        0, &profiles);
  ASSERT_EQ(profiles.size(), queries_->size());
  for (const song::SongQueryProfile& p : profiles) {
    EXPECT_GT(p.hops, 0u);
    EXPECT_GT(p.distance_computations, 0u);
    EXPECT_GT(p.host_ops, 0u);
    EXPECT_GT(p.total_cycles, 0.0);
    double stage_sum = 0;
    for (double c : p.stage_cycles) {
      EXPECT_GE(c, 0.0);
      stage_sum += c;
    }
    EXPECT_LE(stage_sum, p.total_cycles);
    EXPECT_GT(stage_sum, 0.9 * p.total_cycles);
  }
}

TEST_F(ObsTest, SearchBatchPopulatesMetricsRegistry) {
  if (!TracingCompiledIn()) GTEST_SKIP() << "built with GANNS_TRACING=OFF";
  SetMetricsEnabled(true);
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& queries = registry.GetCounter("ganns.queries");
  Histogram& hops = registry.GetHistogram("ganns.hops_per_query");
  const std::uint64_t queries_before = queries.value();
  const std::uint64_t hops_before = hops.count();

  gpusim::Device device;
  RunGanns(device);  // no profiles requested: metrics must still flow
  SetMetricsEnabled(false);

  EXPECT_EQ(queries.value() - queries_before, queries_->size());
  EXPECT_EQ(hops.count() - hops_before, queries_->size());
}

TEST_F(ObsTest, DiagnosticsHistogramAndReachableSinks) {
  const graph::GraphDiagnostics diag = graph::Diagnose(built_->graph, 0);
  ASSERT_FALSE(diag.out_degree_histogram.empty());

  std::size_t vertices = 0;
  std::size_t edges = 0;
  for (std::size_t d = 0; d < diag.out_degree_histogram.size(); ++d) {
    vertices += diag.out_degree_histogram[d];
    edges += d * diag.out_degree_histogram[d];
  }
  EXPECT_EQ(vertices, diag.num_vertices);
  EXPECT_EQ(edges, diag.num_edges);
  EXPECT_EQ(diag.out_degree_histogram[0], diag.sinks);
  EXPECT_LE(diag.reachable_sinks, diag.sinks);

  if (!TracingCompiledIn()) return;
  SetMetricsEnabled(true);
  graph::PublishDiagnostics(diag, "test.obs.diag");
  SetMetricsEnabled(false);
  MetricsRegistry& registry = MetricsRegistry::Global();
  EXPECT_EQ(registry.GetCounter("test.obs.diag.vertices").value(),
            diag.num_vertices);
  EXPECT_EQ(registry.GetCounter("test.obs.diag.edges").value(),
            diag.num_edges);
  EXPECT_EQ(registry.GetCounter("test.obs.diag.reachable_sinks").value(),
            diag.reachable_sinks);
  EXPECT_EQ(registry.GetHistogram("test.obs.diag.out_degree").count(),
            diag.num_vertices);
}

// ---------------------------------------------------------------------------
// HDR histogram: the serving-SLO percentile engine.
// ---------------------------------------------------------------------------

/// The documented quantile contract, computed from a sorted copy of the
/// samples: nearest rank, reported as the bucket's upper bound, clamped to
/// the exact maximum.
std::uint64_t ReferenceQuantile(std::vector<std::uint64_t> sorted, double q) {
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  if (rank < 1) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return std::min(HdrHistogram::HighestEquivalent(sorted[rank - 1]),
                  sorted.back());
}

TEST_F(ObsTest, HdrHistogramIsExactBelowTwoFiftySix) {
  HdrHistogram hist;
  std::vector<std::uint64_t> samples;
  for (std::uint64_t v = 0; v < 256; ++v) {
    hist.Record(v);
    samples.push_back(v);
  }
  EXPECT_EQ(hist.count(), 256u);
  EXPECT_EQ(hist.sum(), 255u * 256u / 2);
  EXPECT_EQ(hist.min(), 0u);
  EXPECT_EQ(hist.max(), 255u);
  // Below 256 every value owns its own bucket, so quantiles are exact.
  for (const double q : {0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(hist.ValueAtQuantile(q), ReferenceQuantile(samples, q)) << q;
  }
  EXPECT_EQ(hist.ValueAtQuantile(0.5), 127u);  // rank 128 of 0..255
  EXPECT_EQ(HdrHistogram::HighestEquivalent(255), 255u);
}

TEST_F(ObsTest, HdrHistogramQuantilesMatchSortedReference) {
  // Adversarial shapes: constant, extreme bimodal, exponential ladder,
  // heavy tail, and a deterministic pseudo-random sweep across magnitudes.
  std::vector<std::vector<std::uint64_t>> distributions;
  distributions.push_back(std::vector<std::uint64_t>(1000, 1000000));
  {
    std::vector<std::uint64_t> bimodal(999, 1);
    bimodal.push_back(1000000000ull);
    distributions.push_back(std::move(bimodal));
  }
  {
    std::vector<std::uint64_t> ladder;
    for (int e = 0; e <= 40; ++e) ladder.push_back(1ull << e);
    distributions.push_back(std::move(ladder));
  }
  {
    std::vector<std::uint64_t> tail(1000, 100);
    for (int i = 0; i < 10; ++i) tail.push_back(10000000ull + i);
    distributions.push_back(std::move(tail));
  }
  {
    std::vector<std::uint64_t> sweep;
    std::uint64_t x = 88172645463325252ull;
    for (int i = 0; i < 5000; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      sweep.push_back(x >> (x % 50));  // magnitudes from 2^14 to 2^64
    }
    distributions.push_back(std::move(sweep));
  }

  for (std::size_t d = 0; d < distributions.size(); ++d) {
    const auto& samples = distributions[d];
    HdrHistogram hist;
    for (std::uint64_t v : samples) hist.Record(v);
    for (const double q : {0.01, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0}) {
      const std::uint64_t got = hist.ValueAtQuantile(q);
      const std::uint64_t want = ReferenceQuantile(samples, q);
      EXPECT_EQ(got, want) << "distribution " << d << " q=" << q;
      // And the headline resolution claim: the report never understates and
      // overstates by less than 2^-7 relative.
      std::vector<std::uint64_t> sorted = samples;
      std::sort(sorted.begin(), sorted.end());
      auto rank = static_cast<std::size_t>(
          std::ceil(q * static_cast<double>(sorted.size())));
      if (rank < 1) rank = 1;
      const std::uint64_t exact = sorted[rank - 1];
      EXPECT_GE(got, exact);
      EXPECT_LE(static_cast<double>(got),
                static_cast<double>(exact) * (1.0 + 1.0 / 128.0) + 1.0);
    }
  }
}

TEST_F(ObsTest, HdrHistogramMergeIsExactAndOrderIndependent) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 5000;
  // Per-thread histograms filled concurrently, with per-thread value ranges
  // so the merged quantiles are sensitive to any lost update.
  std::vector<std::unique_ptr<HdrHistogram>> parts;
  for (int t = 0; t < kThreads; ++t) {
    parts.push_back(std::make_unique<HdrHistogram>());
  }
  std::vector<std::uint64_t> all;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        parts[t]->RecordWithExemplar((t + 1) * 1000 + i * 7,
                                     t * kPerThread + i);
      }
    });
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      all.push_back((t + 1) * 1000 + i * 7);
    }
  }
  for (std::thread& w : workers) w.join();

  HdrHistogram forward;
  for (int t = 0; t < kThreads; ++t) forward.MergeFrom(*parts[t]);
  HdrHistogram backward;
  for (int t = kThreads - 1; t >= 0; --t) backward.MergeFrom(*parts[t]);

  EXPECT_EQ(forward.count(), kThreads * kPerThread);
  EXPECT_EQ(forward.count(), backward.count());
  EXPECT_EQ(forward.sum(), backward.sum());
  EXPECT_EQ(forward.min(), backward.min());
  EXPECT_EQ(forward.max(), backward.max());
  for (const double q : {0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(forward.ValueAtQuantile(q), backward.ValueAtQuantile(q)) << q;
    EXPECT_EQ(forward.ValueAtQuantile(q), ReferenceQuantile(all, q)) << q;
  }
  const auto fe = forward.exemplars();
  const auto be = backward.exemplars();
  ASSERT_EQ(fe.size(), be.size());
  for (std::size_t i = 0; i < fe.size(); ++i) {
    EXPECT_EQ(fe[i].value, be[i].value);
    EXPECT_EQ(fe[i].id, be[i].id);
  }
}

TEST_F(ObsTest, HdrHistogramKeepsLargestExemplars) {
  HdrHistogram hist;
  hist.RecordWithExemplar(50, 5);
  hist.RecordWithExemplar(50, 7);
  hist.RecordWithExemplar(50, 6);
  hist.RecordWithExemplar(40, 4);
  hist.RecordWithExemplar(30, 3);
  hist.RecordWithExemplar(20, 2);
  hist.Record(1000000);  // no exemplar id: never competes for a slot

  const auto exemplars = hist.exemplars();
  ASSERT_EQ(exemplars.size(), HdrHistogram::kMaxExemplars);
  // Descending by value; equal values keep the smaller id first.
  EXPECT_EQ(exemplars[0].value, 50u);
  EXPECT_EQ(exemplars[0].id, 5u);
  EXPECT_EQ(exemplars[1].id, 6u);
  EXPECT_EQ(exemplars[2].id, 7u);
  EXPECT_EQ(exemplars[3].value, 40u);
  EXPECT_EQ(exemplars[3].id, 4u);

  hist.Reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_TRUE(hist.exemplars().empty());
}

TEST_F(ObsTest, RegistryHdrExportsJsonAndPrometheus) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  HdrHistogram& hist = registry.GetHdr("test.obs.hdr_export");
  EXPECT_EQ(&hist, &registry.GetHdr("test.obs.hdr_export"));
  hist.Reset();
  for (std::uint64_t v = 1; v <= 100; ++v) {
    hist.RecordWithExemplar(v * 10, v);
  }

  // The 99th of 10,20,...,1000 is sample 990, reported as its bucket's upper
  // bound (991 at 128 sub-buckets/octave) — recompute rather than hardcode.
  const std::string p99 = std::to_string(hist.ValueAtQuantile(0.99));
  EXPECT_EQ(hist.ValueAtQuantile(0.99),
            std::min(HdrHistogram::HighestEquivalent(990), hist.max()));

  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"hdr\":{"), std::string::npos);
  const std::size_t at = json.find("\"test.obs.hdr_export\"");
  ASSERT_NE(at, std::string::npos);
  EXPECT_NE(json.find("\"p99\":" + p99, at), std::string::npos);
  EXPECT_NE(json.find("\"exemplars\":[{\"id\":100,\"value\":1000}", at),
            std::string::npos);

  const std::string prom = registry.ToPrometheus();
  EXPECT_NE(prom.find("# TYPE ganns_test_obs_hdr_export summary"),
            std::string::npos);
  EXPECT_NE(prom.find("ganns_test_obs_hdr_export{quantile=\"0.99\"} " + p99),
            std::string::npos);
  EXPECT_NE(prom.find("ganns_test_obs_hdr_export_count 100"),
            std::string::npos);
}

std::uint64_t WindowCounterDelta(const WindowSample& window,
                                 const std::string& name) {
  for (const auto& [counter, delta] : window.counter_deltas) {
    if (counter == name) return delta;
  }
  return 0;
}

const WindowSample::HdrWindow* FindHdrWindow(const WindowSample& window,
                                             const std::string& name) {
  for (const WindowSample::HdrWindow& hdr : window.hdr) {
    if (hdr.name == name) return &hdr;
  }
  return nullptr;
}

double WindowGauge(const WindowSample& window, const std::string& name) {
  for (const auto& [gauge, value] : window.gauges) {
    if (gauge == name) return value;
  }
  return -1.0;
}

TEST_F(ObsTest, TimeSeriesWindowsAreCumulativeDeltas) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& counter = registry.GetCounter("test.obs.ts_counter");
  HdrHistogram& hdr = registry.GetHdr("test.obs.ts_hdr");
  hdr.Reset();

  TimeSeriesCollector collector;
  counter.Add(3);
  hdr.Record(100);
  hdr.Record(200);
  const WindowSample first = collector.Tick();
  // The first window deltas against zero: it sees the full cumulative value.
  EXPECT_EQ(first.seq, 0u);
  EXPECT_EQ(first.interval_us, 0.0);
  EXPECT_EQ(WindowCounterDelta(first, "test.obs.ts_counter"), 3u);
  const WindowSample::HdrWindow* window_hdr =
      FindHdrWindow(first, "test.obs.ts_hdr");
  ASSERT_NE(window_hdr, nullptr);
  EXPECT_EQ(window_hdr->count, 2u);
  EXPECT_EQ(window_hdr->total_count, 2u);
  // Values below 256 land in exact buckets, so the quantiles are exact.
  EXPECT_EQ(window_hdr->p50, 100u);
  EXPECT_EQ(window_hdr->max, 200u);

  counter.Add(5);
  hdr.Record(40);
  const WindowSample second = collector.Tick();
  // The second window must report only what happened since the first cut —
  // even though the underlying metrics are cumulative and never reset.
  EXPECT_EQ(second.seq, 1u);
  EXPECT_GT(second.interval_us, 0.0);
  EXPECT_EQ(WindowCounterDelta(second, "test.obs.ts_counter"), 5u);
  window_hdr = FindHdrWindow(second, "test.obs.ts_hdr");
  ASSERT_NE(window_hdr, nullptr);
  EXPECT_EQ(window_hdr->count, 1u);
  EXPECT_EQ(window_hdr->total_count, 3u);
  EXPECT_EQ(window_hdr->p50, 40u);
  EXPECT_EQ(window_hdr->max, 40u);
}

TEST_F(ObsTest, TimeSeriesRingEvictionsAreCounted) {
  Counter& evictions =
      MetricsRegistry::Global().GetCounter("obs.series.overwritten");
  const std::uint64_t evictions_before = evictions.value();

  TimeSeriesOptions options;
  options.ring_capacity = 2;
  TimeSeriesCollector collector(options);
  for (int i = 0; i < 5; ++i) collector.Tick();

  // 5 windows through a 2-slot ring: 3 evictions, all accounted — both on
  // the collector and mirrored into the registry (never silent).
  EXPECT_EQ(collector.overwritten(), 3u);
  EXPECT_EQ(evictions.value() - evictions_before, 3u);
  const std::vector<WindowSample> windows = collector.Windows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].seq, 3u);
  EXPECT_EQ(windows[1].seq, 4u);
}

TEST_F(ObsTest, TimeSeriesDerivesSloHeadroomAndQueueSaturation) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  HdrHistogram& latency = registry.GetHdr("serve.latency_us");
  latency.Reset();
  registry.GetGauge("serve.queue_depth").Set(6);
  registry.GetGauge("serve.queue_capacity").Set(8);

  TimeSeriesOptions options;
  options.slo_deadline_us = 200;
  TimeSeriesCollector collector(options);
  for (int i = 0; i < 10; ++i) latency.Record(180);
  const WindowSample window = collector.Tick();

  // Windowed p99 is exactly 180 (every sample is 180, below the exact-bucket
  // limit), so headroom = 180 / 200. Saturation = depth / capacity.
  EXPECT_DOUBLE_EQ(window.slo_headroom, 0.9);
  EXPECT_DOUBLE_EQ(window.queue_saturation, 0.75);

  // The derived signals feed back into the registry, so the *next* window's
  // gauge set (and the cumulative Prometheus view) carries them.
  const WindowSample next = collector.Tick();
  EXPECT_DOUBLE_EQ(WindowGauge(next, "serve.slo_headroom"), 0.9);
  EXPECT_DOUBLE_EQ(WindowGauge(next, "serve.queue_saturation"), 0.75);
  // An empty window has no p99: headroom drops to 0 rather than repeating.
  EXPECT_DOUBLE_EQ(next.slo_headroom, 0.0);
}

TEST_F(ObsTest, TimeSeriesWindowJsonIsDeterministicAndSorted) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.obs.ts_json_zz").Add(2);
  registry.GetCounter("test.obs.ts_json_aa").Add(1);

  TimeSeriesCollector collector;
  const WindowSample window = collector.Tick();
  const std::string json = TimeSeriesCollector::WindowJson(window);
  EXPECT_EQ(json, TimeSeriesCollector::WindowJson(window));
  for (const char* section :
       {"\"counters\":{", "\"gauges\":{", "\"hdr\":{", "\"derived\":{"}) {
    EXPECT_NE(json.find(section), std::string::npos) << section;
  }
  const std::size_t a = json.find("test.obs.ts_json_aa");
  const std::size_t z = json.find("test.obs.ts_json_zz");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, z);

  collector.Tick();
  const std::string jsonl = collector.ToJsonl();
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
  EXPECT_EQ(jsonl.compare(0, json.size(), json), 0);
}

// Metric writers race the background sampler; the cut windows must still
// partition the recorded totals exactly (no sample lost or double-counted
// across window boundaries). Also the TSan gate's coverage of the collector,
// via the obs_concurrency_test rebuild of this file.
TEST_F(ObsTest, TimeSeriesConcurrentWritersPartitionExactly) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& counter = registry.GetCounter("test.obs.ts_conc_counter");
  HdrHistogram& hdr = registry.GetHdr("test.obs.ts_conc_hdr");
  hdr.Reset();
  const std::uint64_t counter_before = counter.value();

  TimeSeriesOptions options;
  options.interval_ms = 1;
  options.ring_capacity = 1 << 16;  // no evictions: every window retained
  TimeSeriesCollector collector(options);
  collector.Start();

  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.Add();
        hdr.Record(7);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  collector.Stop();
  collector.Tick();  // final cut picks up the tail after the last period

  constexpr std::uint64_t kTotal = kThreads * kPerThread;
  EXPECT_EQ(counter.value() - counter_before, kTotal);
  std::uint64_t counter_sum = 0;
  std::uint64_t hdr_sum = 0;
  for (const WindowSample& window : collector.Windows()) {
    counter_sum += WindowCounterDelta(window, "test.obs.ts_conc_counter");
    if (const WindowSample::HdrWindow* w =
            FindHdrWindow(window, "test.obs.ts_conc_hdr")) {
      hdr_sum += w->count;
    }
  }
  EXPECT_EQ(counter_sum, kTotal);
  EXPECT_EQ(hdr_sum, kTotal);
  EXPECT_EQ(collector.overwritten(), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace ganns
