// Randomized differential test of the fixed-degree adjacency row: a long
// stream of InsertNeighbor / SetNeighbors / ClearVertex operations against
// a sorted-vector reference with identical bounded-eviction semantics.

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/beam_search.h"
#include "graph/proximity_graph.h"

namespace ganns {
namespace graph {
namespace {

struct FuzzCase {
  std::uint64_t seed;
  std::size_t num_vertices;
  std::size_t d_max;
  int operations;
};

class ProximityGraphFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(ProximityGraphFuzz, MatchesSortedVectorReference) {
  const auto [seed, num_vertices, d_max, operations] = GetParam();
  Rng rng(seed);
  ProximityGraph graph(num_vertices, d_max);
  std::map<VertexId, std::vector<Neighbor>> reference;

  const auto dist_of = [](VertexId v, VertexId u) {
    // Deterministic pseudo-distance; collisions on purpose (tie handling).
    return static_cast<Dist>(((std::uint64_t{v} * 131 + u) * 2654435761u) %
                             64);
  };

  for (int op = 0; op < operations; ++op) {
    const VertexId v =
        static_cast<VertexId>(rng.NextBounded(num_vertices));
    const int choice = static_cast<int>(rng.NextBounded(10));
    if (choice < 7) {
      // InsertNeighbor with bounded-eviction semantics.
      VertexId u = static_cast<VertexId>(rng.NextBounded(num_vertices));
      if (u == v) u = (u + 1) % num_vertices;
      const Dist d = dist_of(v, u);
      graph.InsertNeighbor(v, u, d);
      auto& row = reference[v];
      if (std::none_of(row.begin(), row.end(),
                       [u = u](const Neighbor& n) { return n.id == u; })) {
        row.push_back({d, u});
        std::sort(row.begin(), row.end());
        if (row.size() > d_max) row.resize(d_max);
      }
    } else if (choice < 9) {
      // SetNeighbors with a fresh random (sorted, unique) row.
      const std::size_t count = rng.NextBounded(d_max + 1);
      std::vector<Neighbor> fresh;
      for (std::size_t i = 0; i < count; ++i) {
        VertexId u = static_cast<VertexId>(rng.NextBounded(num_vertices));
        if (u == v) u = (u + 1) % num_vertices;
        if (std::none_of(fresh.begin(), fresh.end(),
                         [u](const Neighbor& n) { return n.id == u; })) {
          fresh.push_back({dist_of(v, u), u});
        }
      }
      std::sort(fresh.begin(), fresh.end());
      std::vector<ProximityGraph::Edge> edges;
      for (const Neighbor& n : fresh) edges.push_back({n.id, n.dist});
      graph.SetNeighbors(v, edges);
      reference[v] = fresh;
    } else {
      graph.ClearVertex(v);
      reference[v].clear();
    }
  }

  // Full-state comparison, including sentinel padding.
  std::size_t expected_edges = 0;
  for (std::size_t i = 0; i < num_vertices; ++i) {
    const VertexId v = static_cast<VertexId>(i);
    const auto& row = reference[v];
    expected_edges += row.size();
    ASSERT_EQ(graph.Degree(v), row.size()) << "vertex " << v;
    const auto ids = graph.Neighbors(v);
    const auto dists = graph.NeighborDists(v);
    for (std::size_t s = 0; s < d_max; ++s) {
      if (s < row.size()) {
        ASSERT_EQ(ids[s], row[s].id) << "vertex " << v << " slot " << s;
        ASSERT_EQ(dists[s], row[s].dist) << "vertex " << v << " slot " << s;
      } else {
        ASSERT_EQ(ids[s], kInvalidVertex) << "vertex " << v << " slot " << s;
        ASSERT_EQ(dists[s], kInfDist) << "vertex " << v << " slot " << s;
      }
    }
  }
  EXPECT_EQ(graph.NumEdges(), expected_edges);
}

INSTANTIATE_TEST_SUITE_P(
    RandomStreams, ProximityGraphFuzz,
    ::testing::Values(FuzzCase{1, 8, 2, 2000}, FuzzCase{2, 32, 4, 4000},
                      FuzzCase{3, 16, 8, 4000}, FuzzCase{4, 64, 3, 6000},
                      FuzzCase{5, 4, 16, 2000}, FuzzCase{6, 128, 32, 8000}));

}  // namespace
}  // namespace graph
}  // namespace ganns
