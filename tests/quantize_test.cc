// Tests for the compressed-vector search layer (data/quantize.h):
//
//  * SQ8 roundtrip error is bounded by the per-dimension quantization step
//    and PQ encoding picks the nearest centroid of every subspace;
//  * the approximate code distance agrees with the exact distance to the
//    decoded (reconstructed) vector, and CodeDistanceContext is *bit
//    identical* across every supported SIMD kernel variant — the same
//    determinism contract as the float distance layer, which is why this
//    binary (like distance_kernel_test) is registered with ctest twice:
//    auto-dispatch and GANNS_DISTANCE_KERNEL=scalar;
//  * two-stage search (code distances in the loop, exact rerank before
//    emission) recovers recall to within 1% of the exact float path at the
//    same visited budget, measured against a brute-force oracle;
//  * the quantized trailing section round-trips through the v3 containers
//    (standalone section, GannsIndex Save/Load, ShardedIndex Save/Load),
//    missing sections load as uncompressed, and mismatched sections fail
//    with named errors.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/ganns_index.h"
#include "core/ganns_search.h"
#include "data/dataset.h"
#include "data/distance.h"
#include "data/ground_truth.h"
#include "data/quantize.h"
#include "data/synthetic.h"
#include "graph/cpu_nsw.h"
#include "graph/rerank.h"
#include "serve/shard_router.h"

namespace ganns {
namespace data {
namespace {

/// Restores the dispatcher state a test mutated via SetDistanceKernel.
class QuantizeTest : public ::testing::Test {
 protected:
  void SetUp() override { initial_ = ActiveDistanceKernel(); }
  void TearDown() override { ASSERT_TRUE(SetDistanceKernel(initial_)); }

  DistanceKernel initial_ = DistanceKernel::kScalar;
};

Dataset RandomDataset(std::size_t n, std::size_t dim, Metric metric,
                      std::uint64_t seed) {
  Rng rng(seed);
  Dataset base("quant", dim, metric);
  std::vector<float> row(dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& x : row) x = rng.NextUniform(-2.0f, 2.0f);
    base.Append(row);
  }
  return base;
}

TEST_F(QuantizeTest, PrecisionNamesRoundTrip) {
  for (const Precision p : {Precision::kFloat32, Precision::kSq8,
                            Precision::kPq}) {
    const auto parsed = ParsePrecision(PrecisionName(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(ParsePrecision("int4").has_value());
}

// SQ8 is round-to-nearest over a per-dimension affine grid, so the
// reconstruction error of any in-range value is at most half a step
// (scale[d] / 2), and codes cover the full corpus range by construction.
TEST_F(QuantizeTest, Sq8RoundtripErrorBounded) {
  const Dataset base = RandomDataset(500, 33, Metric::kL2, 71);
  QuantizerOptions options;
  options.precision = Precision::kSq8;
  const Quantizer q = Quantizer::Train(base, options);
  ASSERT_EQ(q.code_bytes(), base.dim());

  std::vector<std::uint8_t> code(q.code_bytes());
  std::vector<float> decoded(base.dim());
  for (std::size_t i = 0; i < base.size(); ++i) {
    const auto row = base.Point(static_cast<VertexId>(i));
    q.EncodeRow(row, code.data());
    q.DecodeRow(code.data(), decoded);
    for (std::size_t d = 0; d < base.dim(); ++d) {
      const float step = q.sq8_scale()[d];
      EXPECT_LE(std::abs(decoded[d] - row[d]), step * 0.5f + 1e-5f)
          << "row " << i << " dim " << d;
    }
  }
}

// PQ encoding must pick the nearest centroid of every subspace — no other
// codebook entry may be strictly closer than the chosen one.
TEST_F(QuantizeTest, PqEncodePicksNearestCentroid) {
  const Dataset base = RandomDataset(400, 20, Metric::kL2, 13);
  QuantizerOptions options;
  options.precision = Precision::kPq;
  options.pq_subspaces = 4;
  options.pq_centroids = 16;
  const Quantizer q = Quantizer::Train(base, options);
  ASSERT_EQ(q.code_bytes(), 4u);
  ASSERT_EQ(q.pq_centroids(), 16u);

  std::vector<std::uint8_t> code(q.code_bytes());
  for (std::size_t i = 0; i < 50; ++i) {
    const auto row = base.Point(static_cast<VertexId>(i));
    q.EncodeRow(row, code.data());
    for (std::size_t m = 0; m < q.pq_subspaces(); ++m) {
      const float* sub_row = row.data() + q.sub_offset(m);
      const Dist chosen = ComputeDistance(Metric::kL2, sub_row,
                                          q.centroid(m, code[m]), q.sub_dim(m));
      for (std::size_t j = 0; j < q.pq_centroids(); ++j) {
        const Dist other = ComputeDistance(Metric::kL2, sub_row,
                                           q.centroid(m, j), q.sub_dim(m));
        EXPECT_GE(other, chosen) << "row " << i << " sub " << m << " j " << j;
      }
    }
  }
}

// The approximate code distance is the exact metric distance to the decoded
// vector (SQ8 dequantizes the same grid values; the PQ LUT sums the same
// per-subspace partials), up to float accumulation-order slack.
TEST_F(QuantizeTest, CodeDistanceMatchesDecodedVector) {
  for (const Metric metric : {Metric::kL2, Metric::kCosine}) {
    const Dataset base = RandomDataset(200, 48, metric, 5);
    Rng rng(91);
    std::vector<float> query(base.dim());
    for (auto& x : query) x = rng.NextUniform(-2.0f, 2.0f);

    for (const Precision precision : {Precision::kSq8, Precision::kPq}) {
      QuantizerOptions options;
      options.precision = precision;
      options.pq_subspaces = 8;
      const Quantizer q = Quantizer::Train(base, options);
      const QuantizedCodes codes = QuantizedCodes::EncodeAll(q, base);
      ASSERT_EQ(codes.size(), base.size());
      const SearchQuantization quant{&q, &codes, 4};
      const CodeDistanceContext ctx(quant, metric, query);

      std::vector<float> decoded(base.dim());
      for (std::size_t i = 0; i < base.size(); ++i) {
        q.DecodeRow(codes.code(i), decoded);
        const Dist want =
            ComputeDistance(metric, decoded.data(), query.data(), base.dim());
        const Dist got = ctx.One(static_cast<VertexId>(i));
        EXPECT_NEAR(want, got, 2e-3f)
            << PrecisionName(precision) << " slot " << i;
      }
    }
  }
}

// The SQ8 kernel family honours the same stripe-and-combine determinism
// contract as the float kernels: every supported variant must return bit
// identical code distances.
TEST_F(QuantizeTest, CodeDistanceBitIdenticalAcrossKernels) {
  const Dataset base = RandomDataset(64, 129, Metric::kL2, 23);
  QuantizerOptions options;
  options.precision = Precision::kSq8;
  const Quantizer q = Quantizer::Train(base, options);
  const QuantizedCodes codes = QuantizedCodes::EncodeAll(q, base);
  const SearchQuantization quant{&q, &codes, 4};

  Rng rng(8);
  std::vector<float> query(base.dim());
  for (auto& x : query) x = rng.NextUniform(-2.0f, 2.0f);

  for (const Metric metric : {Metric::kL2, Metric::kCosine}) {
    ASSERT_TRUE(SetDistanceKernel(DistanceKernel::kScalar));
    std::vector<Dist> want(base.size());
    {
      const CodeDistanceContext scalar_ctx(quant, metric, query);
      for (std::size_t i = 0; i < base.size(); ++i) {
        want[i] = scalar_ctx.One(static_cast<VertexId>(i));
      }
    }
    for (const DistanceKernel k : SupportedDistanceKernels()) {
      ASSERT_TRUE(SetDistanceKernel(k));
      const CodeDistanceContext ctx(quant, metric, query);
      for (std::size_t i = 0; i < base.size(); ++i) {
        const Dist got = ctx.One(static_cast<VertexId>(i));
        EXPECT_EQ(std::memcmp(&want[i], &got, sizeof(Dist)), 0)
            << DistanceKernelName(k) << " slot " << i << " want " << want[i]
            << " got " << got;
      }
    }
  }
}

// ExactRerank re-sorts the top pool by exact float distance: feeding it
// candidates ordered by approximate distance must surface the true nearest
// neighbor first when it is anywhere inside the pool.
TEST_F(QuantizeTest, ExactRerankPromotesTrueNearest) {
  const Dataset base = RandomDataset(100, 16, Metric::kL2, 3);
  Rng rng(4);
  std::vector<float> query(base.dim());
  for (auto& x : query) x = rng.NextUniform(-2.0f, 2.0f);

  // All 100 candidates in reverse-exact order: the worst possible
  // approximate ordering that still contains the answer.
  std::vector<graph::Neighbor> candidates;
  for (std::size_t i = 0; i < base.size(); ++i) {
    const auto id = static_cast<VertexId>(i);
    candidates.push_back(
        {ComputeDistance(Metric::kL2, base.Point(id).data(), query.data(),
                         base.dim()),
         id});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const graph::Neighbor& a, const graph::Neighbor& b) {
              return a.dist > b.dist;
            });
  const VertexId best = candidates.back().id;

  const std::size_t evals =
      graph::ExactRerank(base, query, candidates, /*k=*/10,
                         /*rerank_factor=*/10);
  EXPECT_EQ(evals, 100u);
  ASSERT_EQ(candidates.size(), 10u);
  EXPECT_EQ(candidates.front().id, best);
  EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end(),
                             [](const graph::Neighbor& a,
                                const graph::Neighbor& b) {
                               return a.dist < b.dist ||
                                      (a.dist == b.dist && a.id < b.id);
                             }));
}

// Acceptance property of the two-stage path: at the same traversal budget,
// SQ8 + exact rerank recall stays within 1% of the exact float path,
// measured against a brute-force oracle.
TEST_F(QuantizeTest, TwoStageRecallWithinOnePercentOfExact) {
  const Dataset base =
      GenerateBase(PaperDataset("SIFT1M"), 800, /*seed=*/11);
  const Dataset queries =
      GenerateQueries(PaperDataset("SIFT1M"), 30, 800, /*seed=*/11);
  const GroundTruth truth = BruteForceKnn(base, queries, 10);
  const graph::ProximityGraph nsw =
      std::move(graph::BuildNswCpu(base, {}).graph);

  core::GannsParams params;
  params.k = 10;
  params.l_n = 64;

  gpusim::Device exact_device;
  const graph::BatchSearchResult exact = core::GannsSearchBatch(
      exact_device, nsw, base, queries, params);
  const double exact_recall = MeanRecall(exact.results, truth, params.k);

  QuantizerOptions options;
  options.precision = Precision::kSq8;
  const Quantizer q = Quantizer::Train(base, options);
  const QuantizedCodes codes = QuantizedCodes::EncodeAll(q, base);
  const SearchQuantization quant{&q, &codes, 4};

  gpusim::Device quant_device;
  const graph::BatchSearchResult compressed = core::GannsSearchBatch(
      quant_device, nsw, base, queries, params, 32, 0, nullptr, &quant);
  const double compressed_recall =
      MeanRecall(compressed.results, truth, params.k);

  EXPECT_GE(compressed_recall, exact_recall - 0.01);
  // The narrower code loads must make the same traversal cheaper on the
  // simulated clock.
  EXPECT_LT(compressed.sim_seconds, exact.sim_seconds);
}

TEST_F(QuantizeTest, QuantizedSectionRoundTrips) {
  for (const Precision precision : {Precision::kSq8, Precision::kPq}) {
    const Dataset base = RandomDataset(120, 24, Metric::kL2, 9);
    QuantizerOptions options;
    options.precision = precision;
    options.pq_subspaces = 6;
    options.rerank_factor = 7;
    const Quantizer q = Quantizer::Train(base, options);
    const QuantizedCodes codes = QuantizedCodes::EncodeAll(q, base);

    const std::string path = std::string(::testing::TempDir()) +
                             "/quant_section_" + PrecisionName(precision) +
                             ".bin";
    {
      std::FILE* file = std::fopen(path.c_str(), "wb");
      ASSERT_NE(file, nullptr);
      ASSERT_TRUE(WriteQuantizedSection(file, q, codes));
      std::fclose(file);
    }
    std::FILE* file = std::fopen(path.c_str(), "rb");
    ASSERT_NE(file, nullptr);
    std::string error;
    const auto store = ReadQuantizedSection(file, base.size(), &error);
    std::fclose(file);
    std::remove(path.c_str());

    ASSERT_TRUE(store.has_value()) << error;
    EXPECT_TRUE(error.empty());
    EXPECT_EQ(store->quantizer.precision(), precision);
    EXPECT_EQ(store->quantizer.dim(), base.dim());
    EXPECT_EQ(store->quantizer.rerank_factor(), 7u);
    ASSERT_EQ(store->codes.size(), codes.size());
    ASSERT_EQ(store->codes.code_bytes(), codes.code_bytes());
    EXPECT_EQ(std::memcmp(store->codes.data(), codes.data(),
                          codes.resident_bytes()),
              0);
  }
}

// A container without a trailing section reads back as "no section" — clean
// nullopt with an *empty* error — which is exactly the v1/v2/plain-v3
// read-compat contract.
TEST_F(QuantizeTest, MissingSectionIsCleanEof) {
  const std::string path =
      std::string(::testing::TempDir()) + "/quant_empty.bin";
  { ASSERT_NE(std::fopen(path.c_str(), "wb"), nullptr); }
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string error = "sentinel";
  const auto store = ReadQuantizedSection(file, 10, &error);
  std::fclose(file);
  std::remove(path.c_str());
  EXPECT_FALSE(store.has_value());
  EXPECT_TRUE(error.empty()) << error;
}

// A section whose code array does not cover the expected slot count must
// fail with an error naming both counts.
TEST_F(QuantizeTest, SlotCountMismatchIsNamed) {
  const Dataset base = RandomDataset(40, 8, Metric::kL2, 2);
  QuantizerOptions options;
  options.precision = Precision::kSq8;
  const Quantizer q = Quantizer::Train(base, options);
  const QuantizedCodes codes = QuantizedCodes::EncodeAll(q, base);

  const std::string path =
      std::string(::testing::TempDir()) + "/quant_mismatch.bin";
  {
    std::FILE* file = std::fopen(path.c_str(), "wb");
    ASSERT_NE(file, nullptr);
    ASSERT_TRUE(WriteQuantizedSection(file, q, codes));
    std::fclose(file);
  }
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string error;
  const auto store = ReadQuantizedSection(file, base.size() + 5, &error);
  std::fclose(file);
  std::remove(path.c_str());
  EXPECT_FALSE(store.has_value());
  EXPECT_NE(error.find("40"), std::string::npos) << error;
  EXPECT_NE(error.find("45"), std::string::npos) << error;
}

// GannsIndex::Save/Load must round-trip the compressed state: the loaded
// index is still quantized and returns exactly the results of the original.
TEST_F(QuantizeTest, GannsIndexQuantizedSaveLoadRoundTrips) {
  const Dataset base =
      GenerateBase(PaperDataset("SIFT1M"), 400, /*seed=*/17);
  const Dataset queries =
      GenerateQueries(PaperDataset("SIFT1M"), 10, 400, /*seed=*/17);

  core::GannsIndex::Options options;
  options.quantize.precision = Precision::kSq8;
  options.quantize.rerank_factor = 3;
  auto index = core::GannsIndex::Build(base, options);
  ASSERT_NE(index.quantizer(), nullptr);
  EXPECT_EQ(index.resident_bytes_per_vector(), base.dim());
  const auto want = index.Search(queries, 10);

  const std::string path =
      std::string(::testing::TempDir()) + "/quant_index.bin";
  ASSERT_TRUE(index.Save(path));

  std::string error;
  // Load with *default* options: the quantized state must come from the
  // file, not from the caller's configuration.
  auto loaded =
      core::GannsIndex::Load(path, base, core::GannsIndex::Options(), &error);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_NE(loaded->quantizer(), nullptr);
  EXPECT_EQ(loaded->quantizer()->precision(), Precision::kSq8);
  EXPECT_EQ(loaded->quantizer()->rerank_factor(), 3u);
  EXPECT_EQ(loaded->resident_bytes_per_vector(), base.dim());

  const auto got = loaded->Search(queries, 10);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t qi = 0; qi < want.size(); ++qi) {
    ASSERT_EQ(got[qi].size(), want[qi].size()) << "query " << qi;
    for (std::size_t i = 0; i < want[qi].size(); ++i) {
      EXPECT_EQ(got[qi][i].id, want[qi][i].id) << "query " << qi;
      EXPECT_EQ(got[qi][i].dist, want[qi][i].dist) << "query " << qi;
    }
  }
}

// Same round-trip for the serving containers: SaveShards/LoadShards must
// restore the per-shard quantizer + codes, and the loaded index must return
// exactly the results of the original.
TEST_F(QuantizeTest, ShardedIndexQuantizedSaveLoadRoundTrips) {
  const Dataset base =
      GenerateBase(PaperDataset("SIFT1M"), 500, /*seed=*/29);
  const Dataset queries =
      GenerateQueries(PaperDataset("SIFT1M"), 12, 500, /*seed=*/29);

  serve::ShardBuildOptions options;
  options.quantize.precision = Precision::kPq;
  options.quantize.pq_subspaces = 16;
  options.quantize.pq_centroids = 32;
  auto index = serve::ShardedIndex::Build(base, 2, options);
  EXPECT_EQ(index.resident_bytes_per_vector(), 16u);

  std::vector<serve::RoutedQuery> routed(queries.size());
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    routed[qi].query = queries.Point(static_cast<VertexId>(qi));
    routed[qi].k = 10;
    routed[qi].budget = 128;
  }
  const auto want = index.SearchBatch(routed, core::SearchKernel::kGanns);

  const std::string prefix =
      std::string(::testing::TempDir()) + "/quant_shards";
  ASSERT_TRUE(index.SaveShards(prefix));

  std::string error;
  auto loaded = serve::ShardedIndex::LoadShards(prefix, base, 2, options,
                                                &error);
  for (int s = 0; s < 2; ++s) {
    std::remove((prefix + ".shard" + std::to_string(s)).c_str());
  }
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_TRUE(error.empty());
  EXPECT_EQ(loaded->resident_bytes_per_vector(), 16u);
  const auto got = loaded->SearchBatch(routed, core::SearchKernel::kGanns);
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace data
}  // namespace ganns
