// Property tests for the multi-block device algorithms: the work-efficient
// parallel prefix sum and the cross-block global bitonic sort, validated
// against the serial references.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/prefix_sum.h"
#include "common/random.h"
#include "gpusim/device.h"
#include "gpusim/global_sort.h"
#include "gpusim/scan.h"

namespace ganns {
namespace gpusim {
namespace {

struct ScanCase {
  std::size_t size;
  std::uint64_t seed;
};

class GlobalScanProperty : public ::testing::TestWithParam<ScanCase> {};

TEST_P(GlobalScanProperty, MatchesSerialReference) {
  const auto [size, seed] = GetParam();
  Rng rng(seed);
  std::vector<std::uint32_t> in(size);
  for (auto& v : in) v = static_cast<std::uint32_t>(rng.NextBounded(5));

  std::vector<std::uint32_t> expected(size);
  const std::uint32_t expected_total =
      ExclusivePrefixSum(in, std::span<std::uint32_t>(expected));

  Device device;
  std::vector<std::uint32_t> out(size);
  const std::uint32_t total = GlobalExclusiveScan(
      device, in, std::span<std::uint32_t>(out), 32,
      CostCategory::kDataStructure);
  EXPECT_EQ(total, expected_total);
  EXPECT_EQ(out, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GlobalScanProperty,
    ::testing::Values(ScanCase{1, 1}, ScanCase{7, 2}, ScanCase{512, 3},
                      ScanCase{513, 4}, ScanCase{1000, 5},
                      ScanCase{4096, 6}, ScanCase{100000, 7},
                      ScanCase{1 << 18, 8}));

TEST(GlobalScanTest, EmptyInput) {
  Device device;
  std::vector<std::uint32_t> out;
  EXPECT_EQ(GlobalExclusiveScan(device, {}, std::span<std::uint32_t>(out), 32,
                                CostCategory::kOther),
            0u);
}

TEST(GlobalScanTest, InPlaceAliasing) {
  Device device;
  std::vector<std::uint32_t> data = {1, 2, 3, 4, 5};
  GlobalExclusiveScan(device, data, std::span<std::uint32_t>(data), 32,
                      CostCategory::kOther);
  EXPECT_EQ(data, (std::vector<std::uint32_t>{0, 1, 3, 6, 10}));
}

TEST(GlobalScanTest, ChargesDeviceTime) {
  Device device;
  device.ResetTimeline();
  std::vector<std::uint32_t> data(10000, 1);
  GlobalExclusiveScan(device, data, std::span<std::uint32_t>(data), 32,
                      CostCategory::kDataStructure);
  EXPECT_GT(device.timeline_work(CostCategory::kDataStructure), 0);
}

class GlobalSortProperty : public ::testing::TestWithParam<ScanCase> {};

TEST_P(GlobalSortProperty, MatchesStdSort) {
  const auto [size, seed] = GetParam();
  Rng rng(seed);
  std::vector<std::uint64_t> data(size);
  for (auto& v : data) v = rng.NextBounded(size / 2 + 2);  // duplicates

  std::vector<std::uint64_t> expected = data;
  std::sort(expected.begin(), expected.end());

  Device device;
  GlobalBitonicSort(device, std::span<std::uint64_t>(data),
                    [](std::uint64_t a, std::uint64_t b) { return a < b; },
                    32, CostCategory::kDataStructure);
  EXPECT_EQ(data, expected);
}

INSTANTIATE_TEST_SUITE_P(
    PowerOfTwoSizes, GlobalSortProperty,
    ::testing::Values(ScanCase{1, 11}, ScanCase{2, 12}, ScanCase{64, 13},
                      ScanCase{1024, 14},    // exactly one tile
                      ScanCase{2048, 15},    // two tiles: global stages kick in
                      ScanCase{8192, 16}, ScanCase{1 << 15, 17},
                      ScanCase{1 << 17, 18}));

TEST(GlobalSortDeathTest, NonPowerOfTwoIsFatal) {
  Device device;
  std::vector<int> data(100);
  EXPECT_DEATH(GlobalBitonicSort(device, std::span<int>(data),
                                 [](int a, int b) { return a < b; }, 32,
                                 CostCategory::kOther),
               "not a power of two");
}

TEST(GlobalSortTest, MoreBlocksReduceSimTimeOfLargeSorts) {
  // The cross-block sort parallelizes: a device with more concurrent slots
  // finishes the same network in less simulated time.
  std::vector<std::uint64_t> a(1 << 16);
  Rng rng(9);
  for (auto& v : a) v = rng.NextU64();
  std::vector<std::uint64_t> b = a;

  DeviceSpec narrow_spec;
  narrow_spec.concurrent_blocks = 2;
  Device narrow(narrow_spec);
  narrow.ResetTimeline();
  GlobalBitonicSort(narrow, std::span<std::uint64_t>(a),
                    [](std::uint64_t x, std::uint64_t y) { return x < y; },
                    32, CostCategory::kOther);

  Device wide;  // default: 1280 slots
  wide.ResetTimeline();
  GlobalBitonicSort(wide, std::span<std::uint64_t>(b),
                    [](std::uint64_t x, std::uint64_t y) { return x < y; },
                    32, CostCategory::kOther);

  EXPECT_EQ(a, b);
  EXPECT_GT(narrow.timeline_cycles(), 2 * wide.timeline_cycles());
}

}  // namespace
}  // namespace gpusim
}  // namespace ganns
