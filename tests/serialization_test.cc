// Parameterized serialization failure-path tests: every on-disk reader
// (flat v3 graph record, the same record carrying lifecycle state, the
// layered HNSW stream, and the quantized trailing section) must reject —
// never crash on, never partially apply — a corrupted file. One corruption
// family crossed with every format: wrong magic, unknown version, truncated
// header, truncated payload, and an oversized element count in the header.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/quantize.h"
#include "data/synthetic.h"
#include "graph/hnsw.h"
#include "graph/proximity_graph.h"

namespace ganns {
namespace graph {
namespace {

enum class Format { kGraphV3, kGraphV3Lifecycle, kHnsw, kQuantized };
enum class Corruption {
  kBadMagic,
  kBadVersion,
  kTruncatedHeader,
  kTruncatedPayload,
  kOversizedCount,
};

const char* FormatName(Format f) {
  switch (f) {
    case Format::kGraphV3: return "GraphV3";
    case Format::kGraphV3Lifecycle: return "GraphV3Lifecycle";
    case Format::kHnsw: return "Hnsw";
    case Format::kQuantized: return "Quantized";
  }
  return "?";
}

const char* CorruptionName(Corruption c) {
  switch (c) {
    case Corruption::kBadMagic: return "BadMagic";
    case Corruption::kBadVersion: return "BadVersion";
    case Corruption::kTruncatedHeader: return "TruncatedHeader";
    case Corruption::kTruncatedPayload: return "TruncatedPayload";
    case Corruption::kOversizedCount: return "OversizedCount";
  }
  return "?";
}

/// Writes a small valid file of the given format and returns its path.
/// The suffix keeps paths distinct across the parameterized cases, which
/// ctest runs as concurrent processes sharing one temp directory.
std::string WriteValidFile(Format format, const char* suffix) {
  const std::string path = std::string(::testing::TempDir()) + "/serialization_" +
                           FormatName(format) + "_" + suffix + ".bin";
  if (format == Format::kHnsw) {
    const data::Dataset base =
        data::GenerateBase(data::PaperDataset("SIFT1M"), 64, 3);
    HnswParams params;
    HnswGraph graph = std::move(BuildHnswCpu(base, params).graph);
    EXPECT_TRUE(graph.SaveTo(path));
    return path;
  }
  if (format == Format::kQuantized) {
    const data::Dataset base =
        data::GenerateBase(data::PaperDataset("SIFT1M"), 64, 3);
    data::QuantizerOptions options;
    options.precision = data::Precision::kSq8;
    const data::Quantizer quantizer = data::Quantizer::Train(base, options);
    const data::QuantizedCodes codes =
        data::QuantizedCodes::EncodeAll(quantizer, base);
    std::FILE* file = std::fopen(path.c_str(), "wb");
    EXPECT_NE(file, nullptr);
    EXPECT_TRUE(data::WriteQuantizedSection(file, quantizer, codes));
    std::fclose(file);
    return path;
  }
  ProximityGraph graph(8, 4, format == Format::kGraphV3Lifecycle ? 12 : 8);
  for (VertexId v = 0; v < 8; ++v) {
    graph.InsertNeighbor(v, (v + 1) % 8, 0.5f + static_cast<float>(v));
    graph.InsertNeighbor(v, (v + 3) % 8, 1.5f + static_cast<float>(v));
  }
  if (format == Format::kGraphV3Lifecycle) {
    graph.Tombstone(2);
    graph.Tombstone(5);
    graph.ReleaseTombstone(5);
    const auto v = graph.AllocVertex();
    EXPECT_TRUE(v.has_value());
  }
  EXPECT_TRUE(graph.SaveTo(path));
  return path;
}

bool LoadFile(Format format, const std::string& path) {
  if (format == Format::kHnsw) return HnswGraph::LoadFrom(path).has_value();
  if (format == Format::kQuantized) {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    EXPECT_NE(file, nullptr);
    std::string error;
    const auto store = data::ReadQuantizedSection(file, SIZE_MAX, &error);
    std::fclose(file);
    // A rejected section must carry a named error, never a silent
    // "no section here" (that outcome is reserved for clean EOF).
    EXPECT_EQ(store.has_value(), error.empty());
    return store.has_value();
  }
  return ProximityGraph::LoadFrom(path).has_value();
}

std::vector<std::uint8_t> ReadAll(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  EXPECT_NE(file, nullptr);
  std::fseek(file, 0, SEEK_END);
  std::vector<std::uint8_t> bytes(std::ftell(file));
  std::fseek(file, 0, SEEK_SET);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), file), bytes.size());
  std::fclose(file);
  return bytes;
}

void WriteAll(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), file), bytes.size());
  std::fclose(file);
}

void Corrupt(std::vector<std::uint8_t>& bytes, Corruption corruption) {
  ASSERT_GE(bytes.size(), 32u);  // every format starts with >= 4 u64 words
  auto put_u64 = [&](std::size_t word, std::uint64_t value) {
    for (std::size_t b = 0; b < 8; ++b) {
      bytes[word * 8 + b] = static_cast<std::uint8_t>(value >> (8 * b));
    }
  };
  switch (corruption) {
    case Corruption::kBadMagic:
      bytes[0] ^= 0xFF;
      break;
    case Corruption::kBadVersion:
      put_u64(1, 9999);
      break;
    case Corruption::kTruncatedHeader:
      bytes.resize(12);
      break;
    case Corruption::kTruncatedPayload:
      bytes.resize(bytes.size() * 3 / 5);
      break;
    case Corruption::kOversizedCount:
      // Word 2 is the element count in every header (num_slots for graph
      // records, num_vertices for the HNSW stream, dim for the quantized
      // section): far past the sanity cap.
      put_u64(2, std::uint64_t{1} << 50);
      break;
  }
}

using Param = std::tuple<Format, Corruption>;

class SerializationFailureTest : public ::testing::TestWithParam<Param> {};

TEST_P(SerializationFailureTest, CorruptFileIsRejected) {
  const auto [format, corruption] = GetParam();
  const std::string path = WriteValidFile(format, CorruptionName(corruption));
  ASSERT_TRUE(LoadFile(format, path)) << "valid file must load";

  std::vector<std::uint8_t> bytes = ReadAll(path);
  Corrupt(bytes, corruption);
  WriteAll(path, bytes);
  EXPECT_FALSE(LoadFile(format, path));
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, SerializationFailureTest,
    ::testing::Combine(::testing::Values(Format::kGraphV3,
                                         Format::kGraphV3Lifecycle,
                                         Format::kHnsw,
                                         Format::kQuantized),
                       ::testing::Values(Corruption::kBadMagic,
                                         Corruption::kBadVersion,
                                         Corruption::kTruncatedHeader,
                                         Corruption::kTruncatedPayload,
                                         Corruption::kOversizedCount)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::string(FormatName(std::get<0>(info.param))) + "_" +
             CorruptionName(std::get<1>(info.param));
    });

}  // namespace
}  // namespace graph
}  // namespace ganns
