// Tests for the online serving subsystem (src/serve): the deterministic
// sharded merge, the bounded queue / micro-batcher concurrency, admission
// control, deadline enforcement, graceful shutdown, and shard persistence.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <future>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "graph/hnsw.h"
#include "obs/hdr_histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/flight_recorder.h"
#include "serve/micro_batcher.h"
#include "serve/request_queue.h"
#include "serve/serve_engine.h"
#include "serve/shard_router.h"
#include "serve/topk_merge.h"

namespace ganns {
namespace serve {
namespace {

class ServeTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 600;
  static constexpr std::size_t kQueries = 20;
  static constexpr std::size_t kK = 10;

  void SetUp() override {
    base_ = std::make_unique<data::Dataset>(
        data::GenerateBase(data::PaperDataset("SIFT1M"), kN, 11));
    queries_ = std::make_unique<data::Dataset>(
        data::GenerateQueries(data::PaperDataset("SIFT1M"), kQueries, kN, 11));
  }

  QueryRequest MakeRequest(std::size_t q, std::size_t budget) const {
    QueryRequest request;
    request.id = q;
    const auto point = queries_->Point(static_cast<VertexId>(q));
    request.query.assign(point.begin(), point.end());
    request.k = kK;
    request.budget = budget;
    return request;
  }

  std::vector<RoutedQuery> RoutedQueries(std::size_t budget) const {
    std::vector<RoutedQuery> routed(kQueries);
    for (std::size_t q = 0; q < kQueries; ++q) {
      routed[q].query = queries_->Point(static_cast<VertexId>(q));
      routed[q].k = kK;
      routed[q].budget = budget;
    }
    return routed;
  }

  std::unique_ptr<data::Dataset> base_;
  std::unique_ptr<data::Dataset> queries_;
};

TEST(TopKMergeTest, MergesDisjointSortedRows) {
  const std::vector<std::vector<graph::Neighbor>> rows = {
      {{0.1f, 0}, {0.5f, 2}},
      {{0.2f, 10}, {0.5f, 11}, {0.9f, 12}},
      {},
  };
  const auto merged = MergeTopK(rows, 4);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].id, 0u);
  EXPECT_EQ(merged[1].id, 10u);
  // Equal distances break ties by id: 2 < 11.
  EXPECT_EQ(merged[2].id, 2u);
  EXPECT_EQ(merged[3].id, 11u);
}

TEST(TopKMergeTest, ShardOrderDoesNotMatter) {
  std::vector<std::vector<graph::Neighbor>> rows = {
      {{0.1f, 0}, {0.5f, 2}},
      {{0.2f, 10}, {0.9f, 12}},
  };
  const auto forward = MergeTopK(rows, 3);
  std::swap(rows[0], rows[1]);
  EXPECT_EQ(MergeTopK(rows, 3), forward);
}

// (a) With an exhaustive budget (every shard can visit its whole slice),
// the sharded merge must equal brute-force ground truth exactly — and
// therefore any two shard counts are bit-identical to each other.
TEST_F(ServeTest, ShardedMergeMatchesSingleShardGroundTruth) {
  const data::GroundTruth truth = data::BruteForceKnn(*base_, *queries_, kK);
  // Per-shard budget >= shard size for both shard counts (1024 for n=1,
  // 341 for n=3), so every shard's beam covers its whole slice — while
  // staying inside the kernel's simulated shared-memory limit.
  const std::size_t exhaustive = 1024;
  const auto routed = RoutedQueries(exhaustive);

  std::vector<std::vector<std::vector<graph::Neighbor>>> per_count;
  for (const std::size_t shards : {1u, 3u}) {
    ShardedIndex index = ShardedIndex::Build(*base_, shards, {});
    per_count.push_back(index.SearchBatch(routed, core::SearchKernel::kGanns));
    ASSERT_EQ(per_count.back().size(), kQueries);
    for (std::size_t q = 0; q < kQueries; ++q) {
      const auto& row = per_count.back()[q];
      ASSERT_EQ(row.size(), kK) << "shards=" << shards << " q=" << q;
      for (std::size_t i = 0; i < kK; ++i) {
        EXPECT_EQ(row[i].id, truth.neighbors[q][i])
            << "shards=" << shards << " q=" << q << " rank=" << i;
      }
    }
  }
  EXPECT_EQ(per_count[0], per_count[1]);
}

// Batched concurrent execution must be bit-identical to the single-threaded
// index-ordered reference, at a non-exhaustive budget where approximation
// (but not scheduling) shapes the result.
TEST_F(ServeTest, BatchExecutionMatchesSerialReference) {
  ShardedIndex index = ShardedIndex::Build(*base_, 3, {});
  const auto routed = RoutedQueries(64);
  const auto batched = index.SearchBatch(routed, core::SearchKernel::kGanns);
  const auto serial = index.SearchSerial(routed, core::SearchKernel::kGanns);
  EXPECT_EQ(batched, serial);
}

// (b) Concurrent submitters racing into the engine get exactly the answers
// the offline router computes; batching composition never leaks into
// results.
TEST_F(ServeTest, ConcurrentSubmittersGetDeterministicResults) {
  constexpr std::size_t kSubmitters = 4;
  ShardedIndex index = ShardedIndex::Build(*base_, 2, {});
  const auto expected =
      index.SearchSerial(RoutedQueries(64), core::SearchKernel::kGanns);

  ServeOptions options;
  options.max_batch = 7;  // force batches that mix submitter streams
  ServeEngine engine(index, options);
  engine.Start();

  std::vector<std::future<QueryResponse>> futures(kQueries);
  std::mutex futures_mutex;
  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (std::size_t q = t; q < kQueries; q += kSubmitters) {
        auto future = engine.Submit(MakeRequest(q, 64));
        std::lock_guard<std::mutex> lock(futures_mutex);
        futures[q] = std::move(future);
      }
    });
  }
  for (auto& thread : submitters) thread.join();

  for (std::size_t q = 0; q < kQueries; ++q) {
    const QueryResponse response = futures[q].get();
    EXPECT_EQ(response.status, StatusCode::kOk);
    EXPECT_EQ(response.id, q);
    EXPECT_EQ(response.neighbors, expected[q]) << "q=" << q;
    EXPECT_GE(response.batch_size, 1u);
  }
  engine.Shutdown();
  EXPECT_EQ(engine.counters().served, kQueries);
}

// (c) Admission control: beyond queue_capacity pending requests,
// submissions are rejected immediately with kRejected. Submitting before
// Start() makes the fill deterministic.
TEST_F(ServeTest, AdmissionControlRejectsAtCapacity) {
  ShardedIndex index = ShardedIndex::Build(*base_, 2, {});
  ServeOptions options;
  options.queue_capacity = 3;
  ServeEngine engine(index, options);

  std::vector<std::future<QueryResponse>> futures;
  for (std::size_t q = 0; q < 8; ++q) {
    futures.push_back(engine.Submit(MakeRequest(q, 64)));
  }
  // The overflow futures are already resolved, before the engine even runs.
  for (std::size_t q = options.queue_capacity; q < 8; ++q) {
    ASSERT_EQ(futures[q].wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(futures[q].get().status, StatusCode::kRejected);
  }

  engine.Start();
  for (std::size_t q = 0; q < options.queue_capacity; ++q) {
    EXPECT_EQ(futures[q].get().status, StatusCode::kOk);
  }
  engine.Shutdown();
  const ServeCounters counters = engine.counters();
  EXPECT_EQ(counters.admitted, options.queue_capacity);
  EXPECT_EQ(counters.rejected, 8 - options.queue_capacity);
  EXPECT_EQ(counters.served, options.queue_capacity);
}

// (d) A request whose deadline passed while it queued is answered
// kDeadlineExceeded and never dispatched to a kernel.
TEST_F(ServeTest, ExpiredRequestsNeverReachAKernel) {
  ShardedIndex index = ShardedIndex::Build(*base_, 2, {});
  const std::uint64_t searches_before = index.kernel_queries();

  ServeEngine engine(index, {});
  std::vector<std::future<QueryResponse>> futures;
  for (std::size_t q = 0; q < 5; ++q) {
    QueryRequest request = MakeRequest(q, 64);
    request.deadline = ServeClock::now() - std::chrono::milliseconds(1);
    futures.push_back(engine.Submit(std::move(request)));
  }
  engine.Start();
  for (auto& future : futures) {
    const QueryResponse response = future.get();
    EXPECT_EQ(response.status, StatusCode::kDeadlineExceeded);
    EXPECT_TRUE(response.neighbors.empty());
    EXPECT_EQ(response.batch_size, 0u);
  }
  engine.Shutdown();
  EXPECT_EQ(index.kernel_queries(), searches_before);
  EXPECT_EQ(engine.counters().expired, 5u);
  EXPECT_EQ(engine.counters().served, 0u);
}

// (e) Shutdown closes admission but drains everything already accepted;
// submissions after shutdown resolve immediately with kShutdown.
TEST_F(ServeTest, ShutdownDrainsInFlightWork) {
  ShardedIndex index = ShardedIndex::Build(*base_, 2, {});
  ServeEngine engine(index, {});
  std::vector<std::future<QueryResponse>> futures;
  for (std::size_t q = 0; q < kQueries; ++q) {
    futures.push_back(engine.Submit(MakeRequest(q, 64)));
  }
  engine.Start();
  engine.Shutdown();  // close + drain + join

  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(future.get().status, StatusCode::kOk);
  }
  EXPECT_EQ(engine.counters().served, kQueries);

  auto late = engine.Submit(MakeRequest(0, 64));
  ASSERT_EQ(late.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(late.get().status, StatusCode::kShutdown);
}

TEST_F(ServeTest, ShardPersistenceRoundtrip) {
  const std::string prefix = ::testing::TempDir() + "/serve_shards";
  ShardedIndex built = ShardedIndex::Build(*base_, 2, {});
  const auto routed = RoutedQueries(64);
  const auto before = built.SearchBatch(routed, core::SearchKernel::kGanns);
  ASSERT_TRUE(built.SaveShards(prefix));

  auto loaded = ShardedIndex::LoadShards(prefix, *base_, 2, {});
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->SearchBatch(routed, core::SearchKernel::kGanns), before);

  // Truncation is detected, not crashed on.
  ASSERT_EQ(std::remove((prefix + ".shard1").c_str()), 0);
  std::FILE* stub = std::fopen((prefix + ".shard1").c_str(), "wb");
  ASSERT_NE(stub, nullptr);
  std::fputs("short", stub);
  std::fclose(stub);
  EXPECT_FALSE(ShardedIndex::LoadShards(prefix, *base_, 2, {}).has_value());
  std::remove((prefix + ".shard0").c_str());
  std::remove((prefix + ".shard1").c_str());
}

TEST_F(ServeTest, HnswGraphStreamRoundtrip) {
  graph::HnswParams params;
  const graph::HnswGraph built =
      std::move(graph::BuildHnswCpu(*base_, params).graph);
  const std::string path = ::testing::TempDir() + "/hnsw.bin";
  ASSERT_TRUE(built.SaveTo(path));

  const auto loaded = graph::HnswGraph::LoadFrom(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_vertices(), built.num_vertices());
  EXPECT_EQ(loaded->max_level(), built.max_level());
  EXPECT_EQ(loaded->entry(), built.entry());
  for (VertexId v = 0; v < static_cast<VertexId>(kN); ++v) {
    ASSERT_EQ(loaded->level(v), built.level(v)) << "v=" << v;
  }
  for (int l = 0; l <= built.max_level(); ++l) {
    for (VertexId v = 0; v < static_cast<VertexId>(kN); ++v) {
      if (built.level(v) < l) continue;
      const auto a = built.layer(l).Neighbors(v);
      const auto b = loaded->layer(l).Neighbors(v);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
          << "l=" << l << " v=" << v;
    }
  }

  // A truncated file is rejected cleanly.
  ASSERT_EQ(std::remove(path.c_str()), 0);
  std::FILE* stub = std::fopen(path.c_str(), "wb");
  const std::uint64_t magic_only = 0x57534e4847ULL;
  std::fwrite(&magic_only, sizeof(magic_only), 1, stub);
  std::fclose(stub);
  EXPECT_FALSE(graph::HnswGraph::LoadFrom(path).has_value());
  std::remove(path.c_str());
}

TEST(BoundedQueueTest, PushPopCloseSemantics) {
  BoundedQueue<int> queue(2);
  EXPECT_EQ(queue.Push(1), BoundedQueue<int>::PushResult::kOk);
  EXPECT_EQ(queue.Push(2), BoundedQueue<int>::PushResult::kOk);
  EXPECT_EQ(queue.Push(3), BoundedQueue<int>::PushResult::kFull);

  queue.Close();
  EXPECT_EQ(queue.Push(4), BoundedQueue<int>::PushResult::kClosed);

  int out = 0;
  EXPECT_EQ(queue.Pop(out), BoundedQueue<int>::PopResult::kItem);
  EXPECT_EQ(out, 1);
  EXPECT_EQ(queue.Pop(out), BoundedQueue<int>::PopResult::kItem);
  EXPECT_EQ(out, 2);
  EXPECT_EQ(queue.Pop(out), BoundedQueue<int>::PopResult::kClosed);
}

TEST(BoundedQueueTest, RejectionsAreCounted) {
  BoundedQueue<int> queue(2);
  EXPECT_EQ(queue.dropped(), 0u);
  EXPECT_EQ(queue.Push(1), BoundedQueue<int>::PushResult::kOk);
  EXPECT_EQ(queue.Push(2), BoundedQueue<int>::PushResult::kOk);
  EXPECT_EQ(queue.Push(3), BoundedQueue<int>::PushResult::kFull);
  EXPECT_EQ(queue.Push(4), BoundedQueue<int>::PushResult::kFull);
  EXPECT_EQ(queue.dropped(), 2u);

  int out = 0;
  EXPECT_EQ(queue.Pop(out), BoundedQueue<int>::PopResult::kItem);
  EXPECT_EQ(queue.Push(5), BoundedQueue<int>::PushResult::kOk);
  queue.Close();
  // Closed is a lifecycle outcome, not an admission loss: not a drop.
  EXPECT_EQ(queue.Push(6), BoundedQueue<int>::PushResult::kClosed);
  EXPECT_EQ(queue.dropped(), 2u);
}

TEST(MicroBatcherTest, FlushesOnSizeCap) {
  BoundedQueue<int> queue(16);
  for (int i = 0; i < 10; ++i) ASSERT_EQ(queue.Push(i), BoundedQueue<int>::PushResult::kOk);
  MicroBatcher<int> batcher(queue, 4, std::chrono::microseconds(0));
  EXPECT_EQ(batcher.NextBatch().size(), 4u);
  EXPECT_EQ(batcher.NextBatch().size(), 4u);
  EXPECT_EQ(batcher.NextBatch().size(), 2u);  // greedy drain of the rest
  queue.Close();
  EXPECT_TRUE(batcher.NextBatch().empty());
}

TEST(MicroBatcherTest, WindowBoundsTheWait) {
  BoundedQueue<int> queue(16);
  ASSERT_EQ(queue.Push(42), BoundedQueue<int>::PushResult::kOk);
  MicroBatcher<int> batcher(queue, 8, std::chrono::microseconds(2000));
  const auto start = ServeClock::now();
  const auto batch = batcher.NextBatch();
  const auto waited = ServeClock::now() - start;
  EXPECT_EQ(batch.size(), 1u);  // window expired with one request
  EXPECT_GE(waited, std::chrono::microseconds(1500));
}

// ---------------------------------------------------------------------------
// Request-level tracing and SLO accounting.
// ---------------------------------------------------------------------------

TEST(ParseTraceSampleTest, AcceptsBothFormsAndRejectsGarbage) {
  EXPECT_EQ(ParseTraceSample(nullptr), 1u);
  EXPECT_EQ(ParseTraceSample(""), 1u);
  EXPECT_EQ(ParseTraceSample("0"), 1u);
  EXPECT_EQ(ParseTraceSample("junk"), 1u);
  EXPECT_EQ(ParseTraceSample("7"), 7u);
  EXPECT_EQ(ParseTraceSample("1/16"), 16u);
}

/// Saves and restores the process-wide tracing/metrics switches and clears
/// the global recorder/registry, so assertions see only this test's events.
class ServeTraceTest : public ServeTest {
 protected:
  void SetUp() override {
    ServeTest::SetUp();
    was_tracing_ = obs::TracingEnabled();
    was_metrics_ = obs::MetricsEnabled();
    obs::TraceRecorder::Global().Clear();
    obs::MetricsRegistry::Global().Reset();
  }

  void TearDown() override {
    obs::SetTracingEnabled(was_tracing_);
    obs::SetMetricsEnabled(was_metrics_);
    obs::TraceRecorder::Global().Clear();
  }

  /// Submits requests 0..count-1 before Start — with the default max_batch
  /// of 32 they form one deterministic batch — then drains and returns the
  /// responses in id order.
  std::vector<QueryResponse> RunAll(ServeEngine& engine, std::size_t count) {
    std::vector<std::future<QueryResponse>> futures;
    futures.reserve(count);
    for (std::size_t q = 0; q < count; ++q) {
      futures.push_back(engine.Submit(MakeRequest(q, 64)));
    }
    engine.Start();
    engine.Shutdown();
    std::vector<QueryResponse> responses;
    responses.reserve(count);
    for (auto& future : futures) responses.push_back(future.get());
    return responses;
  }

  /// Recorded events on per-request tracks of the serving process, keyed by
  /// track id.
  static std::map<std::int32_t, std::vector<obs::TraceEvent>> RequestTracks() {
    std::map<std::int32_t, std::vector<obs::TraceEvent>> tracks;
    for (const obs::TraceEvent& event : obs::TraceRecorder::Global().Snapshot()) {
      if (event.pid == obs::kServePid &&
          event.tid >= obs::kServeRequestTrackBase) {
        tracks[event.tid].push_back(event);
      }
    }
    return tracks;
  }

  static std::size_t CountByName(const std::vector<obs::TraceEvent>& events,
                                 std::string_view name) {
    std::size_t count = 0;
    for (const obs::TraceEvent& event : events) {
      if (obs::NameOf(event.name) == name) ++count;
    }
    return count;
  }

  bool was_tracing_ = false;
  bool was_metrics_ = false;
};

// Every served request resolves to exactly one complete span tree on its own
// track: a serve.request root carrying the id, with queue-wait, batch
// formation, shard fan-out (one child per shard), and merge nested inside.
TEST_F(ServeTraceTest, TracedRequestsYieldCompleteSpanTrees) {
  obs::SetTracingEnabled(true);
  ShardedIndex index = ShardedIndex::Build(*base_, 2, {});
  ServeEngine engine(index, {});
  const auto responses = RunAll(engine, kQueries);
  for (const auto& response : responses) {
    ASSERT_EQ(response.status, StatusCode::kOk);
  }

  const auto tracks = RequestTracks();
  ASSERT_EQ(tracks.size(), kQueries);
  for (std::size_t q = 0; q < kQueries; ++q) {
    const auto it = tracks.find(obs::ServeRequestTrack(q));
    ASSERT_NE(it, tracks.end()) << "q=" << q;
    const auto& events = it->second;

    const obs::TraceEvent* root = nullptr;
    for (const obs::TraceEvent& event : events) {
      if (obs::NameOf(event.name) == "serve.request") {
        EXPECT_EQ(root, nullptr) << "duplicate root, q=" << q;
        root = &event;
      }
    }
    ASSERT_NE(root, nullptr) << "q=" << q;
    EXPECT_EQ(root->arg, static_cast<std::int64_t>(q));

    EXPECT_EQ(CountByName(events, "serve.queue_wait"), 1u) << "q=" << q;
    EXPECT_EQ(CountByName(events, "serve.batch_form"), 1u) << "q=" << q;
    EXPECT_EQ(CountByName(events, "serve.shard_fanout"), 1u) << "q=" << q;
    EXPECT_EQ(CountByName(events, "serve.shard_search"), 2u) << "q=" << q;
    EXPECT_EQ(CountByName(events, "serve.merge"), 1u) << "q=" << q;
    // Every stage nests inside the root's [submit, done] interval.
    for (const obs::TraceEvent& event : events) {
      EXPECT_GE(event.ts, root->ts - 0.1);
      EXPECT_LE(event.ts + event.dur, root->ts + root->dur + 0.1);
    }
  }
}

// Requests that never reach a kernel close their tree with a terminal
// instant (serve.expired / serve.rejected) and never emit fan-out, shard, or
// merge spans.
TEST_F(ServeTraceTest, TerminalRequestsEmitTerminalSpansOnly) {
  obs::SetTracingEnabled(true);
  ShardedIndex index = ShardedIndex::Build(*base_, 2, {});

  {
    ServeEngine engine(index, {});
    std::vector<std::future<QueryResponse>> futures;
    for (std::size_t q = 0; q < 5; ++q) {
      QueryRequest request = MakeRequest(q, 64);
      request.deadline = ServeClock::now() - std::chrono::milliseconds(1);
      futures.push_back(engine.Submit(std::move(request)));
    }
    engine.Start();
    engine.Shutdown();
    for (auto& future : futures) {
      EXPECT_EQ(future.get().status, StatusCode::kDeadlineExceeded);
    }

    const auto tracks = RequestTracks();
    ASSERT_EQ(tracks.size(), 5u);
    for (const auto& [tid, events] : tracks) {
      EXPECT_EQ(CountByName(events, "serve.request"), 1u);
      EXPECT_EQ(CountByName(events, "serve.expired"), 1u);
      EXPECT_EQ(CountByName(events, "serve.shard_fanout"), 0u);
      EXPECT_EQ(CountByName(events, "serve.shard_search"), 0u);
      EXPECT_EQ(CountByName(events, "serve.merge"), 0u);
    }
  }

  obs::TraceRecorder::Global().Clear();
  {
    ServeOptions options;
    options.queue_capacity = 3;
    ServeEngine engine(index, options);
    std::vector<std::future<QueryResponse>> futures;
    for (std::size_t q = 0; q < 8; ++q) {
      futures.push_back(engine.Submit(MakeRequest(q, 64)));
    }
    engine.Start();
    engine.Shutdown();

    const auto tracks = RequestTracks();
    for (std::size_t q = options.queue_capacity; q < 8; ++q) {
      EXPECT_EQ(futures[q].get().status, StatusCode::kRejected);
      const auto it = tracks.find(obs::ServeRequestTrack(q));
      ASSERT_NE(it, tracks.end()) << "q=" << q;
      EXPECT_EQ(CountByName(it->second, "serve.request"), 1u);
      EXPECT_EQ(CountByName(it->second, "serve.rejected"), 1u);
      EXPECT_EQ(CountByName(it->second, "serve.shard_search"), 0u);
      EXPECT_EQ(CountByName(it->second, "serve.merge"), 0u);
    }
  }
}

// Sampling is a pure function of the request id: with trace_sample = 3,
// exactly the ids divisible by 3 own span trees.
TEST_F(ServeTraceTest, TraceSamplingIsDeterministicByRequestId) {
  obs::SetTracingEnabled(true);
  ShardedIndex index = ShardedIndex::Build(*base_, 2, {});
  ServeOptions options;
  options.trace_sample = 3;
  ServeEngine engine(index, options);
  RunAll(engine, kQueries);

  const auto tracks = RequestTracks();
  for (std::size_t q = 0; q < kQueries; ++q) {
    const bool sampled = q % 3 == 0;
    EXPECT_EQ(tracks.count(obs::ServeRequestTrack(q)), sampled ? 1u : 0u)
        << "q=" << q;
  }
  EXPECT_EQ(tracks.size(), (kQueries + 2) / 3);
}

// Instrumentation observes, it never participates: enabling tracing and
// metrics changes neither the neighbors any request receives nor the
// simulated cycle total the batch is charged.
TEST_F(ServeTraceTest, InstrumentationChargesNoCyclesAndPreservesResults) {
  // Disable before Build too: under GANNS_TRACING=1 construction kernels
  // would otherwise fill the recorder before the baseline run.
  obs::SetTracingEnabled(false);
  obs::SetMetricsEnabled(false);
  ShardedIndex index = ShardedIndex::Build(*base_, 2, {});

  std::vector<std::vector<graph::Neighbor>> baseline;
  double baseline_sim_seconds = 0;
  {
    ServeEngine engine(index, {});
    for (const auto& response : RunAll(engine, kQueries)) {
      ASSERT_EQ(response.status, StatusCode::kOk);
      baseline.push_back(response.neighbors);
    }
    baseline_sim_seconds = engine.total_sim_seconds();
  }
  EXPECT_EQ(obs::TraceRecorder::Global().size(), 0u);

  obs::SetTracingEnabled(true);
  obs::SetMetricsEnabled(true);
  {
    ServeEngine engine(index, {});
    const auto responses = RunAll(engine, kQueries);
    ASSERT_EQ(responses.size(), baseline.size());
    for (std::size_t q = 0; q < responses.size(); ++q) {
      EXPECT_EQ(responses[q].neighbors, baseline[q]) << "q=" << q;
    }
    // Same batch composition => bit-identical simulated device time.
    EXPECT_EQ(engine.total_sim_seconds(), baseline_sim_seconds);
  }
  EXPECT_GT(obs::TraceRecorder::Global().size(), 0u);
}

// The serve.latency_us HDR histogram reports exactly the documented
// nearest-rank quantiles of the recorded (truncated) response latencies, and
// its exemplars link the tail back to real request ids.
TEST_F(ServeTraceTest, ServeLatencyHdrMatchesOfflineQuantiles) {
  obs::SetMetricsEnabled(true);
  ShardedIndex index = ShardedIndex::Build(*base_, 2, {});
  ServeEngine engine(index, {});
  const auto responses = RunAll(engine, kQueries);

  std::vector<std::uint64_t> latencies;
  std::map<std::uint64_t, std::uint64_t> latency_by_id;
  for (const auto& response : responses) {
    ASSERT_EQ(response.status, StatusCode::kOk);
    const auto truncated =
        static_cast<std::uint64_t>(std::max(0.0, response.latency_us));
    latencies.push_back(truncated);
    latency_by_id[response.id] = truncated;
  }
  std::sort(latencies.begin(), latencies.end());

  const obs::HdrHistogram& hdr =
      obs::MetricsRegistry::Global().GetHdr("serve.latency_us");
  EXPECT_EQ(hdr.count(), kQueries);
  for (const double q : {0.5, 0.9, 0.95, 0.99, 1.0}) {
    auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(latencies.size())));
    if (rank < 1) rank = 1;
    const std::uint64_t expected = std::min(
        obs::HdrHistogram::HighestEquivalent(latencies[rank - 1]),
        latencies.back());
    EXPECT_EQ(hdr.ValueAtQuantile(q), expected) << "q=" << q;
  }

  const auto exemplars = hdr.exemplars();
  ASSERT_FALSE(exemplars.empty());
  EXPECT_EQ(exemplars[0].value, latencies.back());
  for (const auto& exemplar : exemplars) {
    ASSERT_TRUE(latency_by_id.count(exemplar.id)) << exemplar.id;
    EXPECT_EQ(latency_by_id[exemplar.id], exemplar.value);
  }
}

// ---------------------------------------------------------------------------
// Tail-based flight recorder.
// ---------------------------------------------------------------------------

/// Isolates the process-wide flight recorder: saves and restores its
/// configuration and enabled state, and clears its rings around every test.
class FlightRecorderTest : public ServeTraceTest {
 protected:
  void SetUp() override {
    ServeTraceTest::SetUp();
    FlightRecorder& recorder = FlightRecorder::Global();
    was_enabled_ = recorder.enabled();
    old_options_ = recorder.options();
    recorder.SetEnabled(false);
    recorder.Clear();
  }

  void TearDown() override {
    FlightRecorder& recorder = FlightRecorder::Global();
    recorder.SetEnabled(was_enabled_);
    recorder.Clear();
    recorder.Configure(old_options_);
    ServeTraceTest::TearDown();
  }

  static FlightRequest MakeRecord(std::uint64_t id, StatusCode status,
                                  double latency_us,
                                  std::uint64_t deadline_us) {
    FlightRequest record;
    record.id = id;
    record.status = status;
    record.latency_us = latency_us;
    record.deadline_us = deadline_us;
    return record;
  }

  bool was_enabled_ = false;
  FlightRecorderOptions old_options_;
};

TEST_F(FlightRecorderTest, ViolationRuleMatchesContract) {
  FlightRecorder& recorder = FlightRecorder::Global();
  FlightRecorderOptions options;
  options.deadline_fraction = 0.5;
  options.default_deadline_us = 0;
  recorder.Configure(options);
  recorder.SetEnabled(true);

  recorder.RecordRequest(MakeRecord(1, StatusCode::kOk, 400, 1000));
  recorder.RecordRequest(MakeRecord(2, StatusCode::kOk, 600, 1000));
  recorder.RecordRequest(MakeRecord(3, StatusCode::kRejected, 0, 0));
  recorder.RecordRequest(MakeRecord(4, StatusCode::kDeadlineExceeded, 0, 0));
  // Shutdown is a lifecycle outcome, never a violation — even when slow.
  recorder.RecordRequest(MakeRecord(5, StatusCode::kShutdown, 1e9, 1));
  // No deadline and no default budget: served requests cannot violate.
  recorder.RecordRequest(MakeRecord(6, StatusCode::kOk, 1e9, 0));

  const FlightCounters counters = recorder.counters();
  EXPECT_EQ(counters.recorded, 6u);
  EXPECT_EQ(counters.violators, 3u);
  EXPECT_EQ(counters.persisted, 3u);
  const std::vector<FlightRequest> violators = recorder.Violators();
  ASSERT_EQ(violators.size(), 3u);
  EXPECT_EQ(violators[0].id, 2u);  // over the 0.5 * 1000us fraction
  EXPECT_EQ(violators[1].id, 3u);  // rejected: always a tail event
  EXPECT_EQ(violators[2].id, 4u);  // expired: always a tail event

  // A default budget makes deadline-less served requests eligible again.
  options.default_deadline_us = 100;
  recorder.Configure(options);
  recorder.RecordRequest(MakeRecord(7, StatusCode::kOk, 60, 0));
  EXPECT_EQ(recorder.counters().violators, 4u);
}

TEST_F(FlightRecorderTest, EveryBoundedBufferCountsItsEvictions) {
  obs::SetMetricsEnabled(true);
  FlightRecorder& recorder = FlightRecorder::Global();
  FlightRecorderOptions options;
  options.request_capacity = 2;
  options.batch_capacity = 1;
  options.deadline_fraction = 0.5;
  recorder.Configure(options);
  recorder.SetEnabled(true);

  // 5 non-violators through a 2-slot request ring: 3 evictions.
  for (std::uint64_t id = 1; id <= 5; ++id) {
    recorder.RecordRequest(MakeRecord(id, StatusCode::kOk, 1, 1000));
  }
  // 2 batch contexts through a 1-slot batch ring: 1 eviction.
  for (std::uint64_t seq = 1; seq <= 2; ++seq) {
    FlightBatch batch;
    batch.seq = seq;
    recorder.RecordBatch(std::move(batch));
  }
  // 5 violators against a persisted list capped at request_capacity = 2.
  for (std::uint64_t id = 10; id <= 14; ++id) {
    recorder.RecordRequest(MakeRecord(id, StatusCode::kRejected, 0, 0));
  }

  const FlightCounters counters = recorder.counters();
  EXPECT_EQ(counters.recorded, 10u);
  EXPECT_EQ(counters.overwritten, 8u);
  EXPECT_EQ(counters.batches, 2u);
  EXPECT_EQ(counters.batches_overwritten, 1u);
  EXPECT_EQ(counters.violators, 5u);
  EXPECT_EQ(counters.persisted, 2u);
  EXPECT_EQ(counters.persisted_dropped, 3u);

  // The evictions mirror into the registry, so the cumulative views and the
  // time-series windows expose the loss too.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  EXPECT_EQ(registry.GetCounter("serve.flight.overwritten").value(), 8u);
  EXPECT_EQ(registry.GetCounter("serve.flight.batches_overwritten").value(),
            1u);
}

// The tail path end to end: with head-sampling off and an SLO every request
// busts, each served request must land in the flight dump with its complete
// span tree and hardness record, retroactively flushed into the trace.
TEST_F(FlightRecorderTest, EnginePersistsViolatorsWithSpansAndHardness) {
  obs::SetTracingEnabled(false);  // tail-only: no head sampling anywhere
  FlightRecorder& recorder = FlightRecorder::Global();
  FlightRecorderOptions options;
  options.deadline_fraction = 1e-9;
  options.default_deadline_us = 1;
  recorder.Configure(options);
  recorder.SetEnabled(true);

  ShardedIndex index = ShardedIndex::Build(*base_, 2, {});
  ServeEngine engine(index, {});
  const auto responses = RunAll(engine, kQueries);
  for (const auto& response : responses) {
    ASSERT_EQ(response.status, StatusCode::kOk);
  }

  const FlightCounters counters = recorder.counters();
  EXPECT_EQ(counters.recorded, kQueries);
  EXPECT_EQ(counters.violators, kQueries);
  EXPECT_EQ(counters.persisted, kQueries);
  EXPECT_EQ(counters.batches, 1u);  // kQueries < max_batch: one batch

  const std::vector<FlightRequest> violators = recorder.Violators();
  ASSERT_EQ(violators.size(), kQueries);
  for (const FlightRequest& violator : violators) {
    EXPECT_GT(violator.latency_us, 0.0) << violator.id;
    EXPECT_EQ(violator.batch_seq, 1u);
    EXPECT_EQ(violator.batch_size, kQueries);
    EXPECT_FALSE(violator.sampled);  // tracing off: tail-only capture
    ASSERT_TRUE(violator.hardness_valid) << violator.id;
    EXPECT_GT(violator.hardness.budget, 0u);
    EXPECT_GE(violator.hardness.visited, 1u);
    // Full journey: root + queue_wait + batch_form + shard_fanout +
    // 2x shard_search + merge — exactly what head sampling would emit.
    EXPECT_EQ(violator.spans.size(), 7u) << violator.id;
    std::size_t roots = 0;
    for (const obs::TraceEvent& span : violator.spans) {
      if (obs::NameOf(span.name) == "serve.request") ++roots;
    }
    EXPECT_EQ(roots, 1u) << violator.id;
  }

  // Retroactive flush: every violator's tree is now in the trace recorder
  // even though no request was head-sampled.
  EXPECT_EQ(RequestTracks().size(), kQueries);

  // Hardness-vs-latency exemplars: one line per ring request, all violators.
  const std::string jsonl = recorder.HardnessJsonl();
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'),
            static_cast<std::ptrdiff_t>(kQueries));
  EXPECT_NE(jsonl.find("\"violator\":true"), std::string::npos);
  EXPECT_NE(jsonl.find("\"entry_distance\":"), std::string::npos);

  // The dump carries all four sections schema_check flight validates.
  const std::string dump = recorder.ToJson();
  for (const char* section :
       {"\"options\":", "\"counters\":", "\"violators\":", "\"batches\":"}) {
    EXPECT_NE(dump.find(section), std::string::npos) << section;
  }
}

// Head sampling and the flight recorder share one span tree per request; a
// violator that live tracing already recorded must not be flushed again —
// the exported trace keeps exactly one serve.request root per track.
TEST_F(FlightRecorderTest, HeadSampledViolatorsAreNotDoubleFlushed) {
  obs::SetTracingEnabled(true);
  FlightRecorder& recorder = FlightRecorder::Global();
  FlightRecorderOptions options;
  options.deadline_fraction = 1e-9;
  options.default_deadline_us = 1;
  recorder.Configure(options);
  recorder.SetEnabled(true);

  ShardedIndex index = ShardedIndex::Build(*base_, 2, {});
  ServeOptions serve_options;
  serve_options.trace_sample = 2;  // even ids head-sampled, odd ids not
  ServeEngine engine(index, serve_options);
  RunAll(engine, kQueries);

  const auto tracks = RequestTracks();
  ASSERT_EQ(tracks.size(), kQueries);  // sampled + tail-flushed together
  for (const auto& [tid, events] : tracks) {
    EXPECT_EQ(CountByName(events, "serve.request"), 1u) << "tid=" << tid;
    EXPECT_EQ(CountByName(events, "serve.merge"), 1u) << "tid=" << tid;
  }
  for (const FlightRequest& violator : recorder.Violators()) {
    EXPECT_EQ(violator.sampled, violator.id % 2 == 0) << violator.id;
  }
}

// Flight recording must not move results: neighbors are bit-identical with
// the recorder on and off (it observes wall time, never simulated cycles).
TEST_F(FlightRecorderTest, RecordingDoesNotChangeResults) {
  ShardedIndex index = ShardedIndex::Build(*base_, 2, {});
  FlightRecorder& recorder = FlightRecorder::Global();
  FlightRecorderOptions options;
  options.deadline_fraction = 1e-9;
  options.default_deadline_us = 1;
  recorder.Configure(options);

  const auto run = [&](bool enabled) {
    recorder.SetEnabled(enabled);
    ServeEngine engine(index, {});
    std::vector<QueryResponse> responses = RunAll(engine, kQueries);
    std::sort(responses.begin(), responses.end(),
              [](const QueryResponse& a, const QueryResponse& b) {
                return a.id < b.id;
              });
    return responses;
  };
  const auto off = run(false);
  const auto on = run(true);
  ASSERT_EQ(recorder.counters().persisted, kQueries);

  ASSERT_EQ(off.size(), on.size());
  for (std::size_t q = 0; q < off.size(); ++q) {
    EXPECT_EQ(off[q].neighbors, on[q].neighbors) << "q=" << q;
  }
}

// ---------------------------------------------------------------------------
// Index lifecycle: online insert/delete, epoch snapshots, compaction.

class LifecycleTest : public ServeTest {
 protected:
  static ShardBuildOptions MutableOptions(bool host_updates,
                                          bool auto_compact) {
    ShardBuildOptions options;
    options.update.host_updates = host_updates;
    options.update.auto_compact = auto_compact;
    return options;
  }

  /// Brute-force oracle over an explicit survivor set: searches the index
  /// at an exhaustive budget and asserts the returned global ids equal the
  /// k nearest among `live` (a gid -> vector map).
  void ExpectMatchesSurvivors(
      ShardedIndex& index,
      const std::map<VertexId, std::vector<float>>& live) {
    data::Dataset survivors("survivors", base_->dim(), base_->metric());
    std::vector<VertexId> gid_of;
    survivors.Reserve(live.size());
    for (const auto& [gid, point] : live) {
      survivors.Append(point);
      gid_of.push_back(gid);
    }
    const data::GroundTruth truth =
        data::BruteForceKnn(survivors, *queries_, kK);
    const auto results =
        index.SearchBatch(RoutedQueries(1024), core::SearchKernel::kGanns);
    ASSERT_EQ(results.size(), kQueries);
    for (std::size_t q = 0; q < kQueries; ++q) {
      ASSERT_EQ(results[q].size(), std::min(kK, live.size())) << "q=" << q;
      for (std::size_t i = 0; i < results[q].size(); ++i) {
        EXPECT_EQ(results[q][i].id, gid_of[truth.neighbors[q][i]])
            << "q=" << q << " rank=" << i;
      }
    }
  }

  /// A deterministic mixed insert/remove interleaving applied to `index`,
  /// mirrored into `live`. Returns the ids inserted (in order).
  std::vector<VertexId> ApplyMixedWorkload(
      ShardedIndex& index, std::map<VertexId, std::vector<float>>& live) {
    const data::Dataset extra = data::GenerateBase(
        data::PaperDataset("SIFT1M"), 24, 29);
    std::vector<VertexId> inserted;
    std::size_t next_extra = 0;
    for (std::size_t i = 0; i < 48; ++i) {
      if (i % 2 == 0) {
        // Spread removals over initial ids and earlier inserts.
        const VertexId victim =
            (i % 4 == 0 || inserted.size() < 3)
                ? static_cast<VertexId>((i * 131) % kN)
                : inserted[(i / 2) % inserted.size()];
        const bool was_live = live.erase(victim) > 0;
        EXPECT_EQ(index.Remove(victim), was_live) << "victim=" << victim;
      } else {
        const auto point = extra.Point(static_cast<VertexId>(next_extra++));
        const auto gid = index.Insert(point);
        if (!gid.has_value()) {
          ADD_FAILURE() << "insert " << i << " found no free capacity";
          return inserted;
        }
        EXPECT_GE(*gid, kN);  // fresh ids extend the global space
        EXPECT_EQ(live.count(*gid), 0u);
        live[*gid] = {point.begin(), point.end()};
        inserted.push_back(*gid);
      }
    }
    return inserted;
  }

  std::map<VertexId, std::vector<float>> InitialLiveSet() const {
    std::map<VertexId, std::vector<float>> live;
    for (VertexId v = 0; v < static_cast<VertexId>(kN); ++v) {
      const auto point = base_->Point(v);
      live[v] = {point.begin(), point.end()};
    }
    return live;
  }
};

// (tentpole oracle) After an arbitrary insert/remove interleaving, search
// at an exhaustive budget returns exactly the brute-force nearest neighbors
// of the surviving point set — on both the charged device path and the host
// path. Double-removes and unknown ids are rejected without side effects.
TEST_F(LifecycleTest, MixedUpdatesMatchBruteForceOracle) {
  for (const bool host_updates : {false, true}) {
    ShardedIndex index =
        ShardedIndex::Build(*base_, 2, MutableOptions(host_updates, false));
    auto live = InitialLiveSet();
    const auto inserted = ApplyMixedWorkload(index, live);

    EXPECT_FALSE(index.Remove(static_cast<VertexId>(kN + 100000)));
    const VertexId gone = inserted[0];
    if (live.count(gone) == 0) EXPECT_FALSE(index.Remove(gone));

    EXPECT_EQ(index.size(), live.size());
    EXPECT_EQ(index.inserts(), inserted.size());
    if (!host_updates) EXPECT_GT(index.update_sim_seconds(), 0.0);
    ExpectMatchesSurvivors(index, live);
  }
}

// Readers never block on writers: a dedicated reader thread streams batches
// (the engine's serialized read path) while this thread applies updates.
// Every batch sees some fully consistent epoch — full rows, no torn graph.
// The TSan gate runs this test under the race detector.
TEST_F(LifecycleTest, WritesDoNotBlockConcurrentReads) {
  ShardedIndex index =
      ShardedIndex::Build(*base_, 2, MutableOptions(false, true));
  const auto routed = RoutedQueries(64);
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> batches{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto results =
          index.SearchBatch(routed, core::SearchKernel::kGanns);
      ASSERT_EQ(results.size(), kQueries);
      for (const auto& row : results) ASSERT_EQ(row.size(), kK);
      batches.fetch_add(1, std::memory_order_relaxed);
    }
  });

  const data::Dataset extra =
      data::GenerateBase(data::PaperDataset("SIFT1M"), 20, 31);
  for (std::size_t i = 0; i < 40; ++i) {
    if (i % 2 == 0) {
      index.Remove(static_cast<VertexId>((i * 53) % kN));
    } else {
      ASSERT_TRUE(index.Insert(extra.Point(static_cast<VertexId>(i / 2)))
                      .has_value());
    }
  }
  // Let the reader observe the final state at least once more.
  const std::size_t seen = batches.load(std::memory_order_relaxed);
  while (batches.load(std::memory_order_relaxed) <= seen) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_GT(batches.load(std::memory_order_relaxed), 0u);
}

// Background compaction fires once the tombstone fraction crosses the
// threshold, rebuilds the shard over the survivors, and search stays exact.
TEST_F(LifecycleTest, CompactionTriggersAtThreshold) {
  ShardBuildOptions options = MutableOptions(false, true);
  options.update.compact_threshold = 0.2;
  ShardedIndex index = ShardedIndex::Build(*base_, 1, options);
  auto live = InitialLiveSet();

  // Remove 25% of the corpus: crosses the 20% threshold mid-way.
  for (VertexId v = 0; v < static_cast<VertexId>(kN); v += 4) {
    ASSERT_TRUE(index.Remove(v));
    live.erase(v);
  }
  // The compactor may fire mid-workload and consume only the removals seen
  // so far; the settled invariant is that at least one compaction ran and
  // the fraction ends below the threshold (removals after a rebuild stay
  // tombstoned until they cross it again). Generous ceiling: the rebuild
  // takes well under a second here but tens of seconds under the
  // sanitizer gates.
  for (int i = 0; i < 18000 && (index.compactions() == 0 ||
                                index.TombstoneFraction(0) >=
                                    options.update.compact_threshold);
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(index.compactions(), 1u);
  EXPECT_LT(index.TombstoneFraction(0), options.update.compact_threshold);
  EXPECT_EQ(index.size(), live.size());
  ExpectMatchesSurvivors(index, live);

  // Post-compaction ids still resolve: removing a survivor works, and the
  // freed slots take new inserts.
  ASSERT_TRUE(index.Remove(1));
  live.erase(1);
  const auto gid = index.Insert(base_->Point(0));
  ASSERT_TRUE(gid.has_value());
  const auto p0 = base_->Point(0);
  live[*gid] = {p0.begin(), p0.end()};
  ExpectMatchesSurvivors(index, live);
}

// A manual compaction is graph-identical to building from scratch over the
// surviving points: same construction pipeline, same parameters, survivors
// repacked in slot order.
TEST_F(LifecycleTest, CompactionMatchesFreshBuildOverSurvivors) {
  ShardedIndex index =
      ShardedIndex::Build(*base_, 1, MutableOptions(false, false));
  data::Dataset survivors("survivors", base_->dim(), base_->metric());
  for (VertexId v = 0; v < static_cast<VertexId>(kN); ++v) {
    if (v % 5 == 0) {
      ASSERT_TRUE(index.Remove(v));
    } else {
      survivors.Append(base_->Point(v));
    }
  }
  ASSERT_TRUE(index.Compact(0));
  EXPECT_FALSE(index.Compact(0));  // nothing left to reclaim

  ShardedIndex fresh =
      ShardedIndex::Build(survivors, 1, MutableOptions(false, false));
  const graph::ProximityGraph& a = index.shard_graph(0);
  const graph::ProximityGraph& b = fresh.shard_graph(0);
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  for (VertexId v = 0; v < static_cast<VertexId>(a.num_vertices()); ++v) {
    ASSERT_EQ(a.Degree(v), b.Degree(v)) << "v=" << v;
    for (std::size_t i = 0; i < a.Degree(v); ++i) {
      ASSERT_EQ(a.Neighbors(v)[i], b.Neighbors(v)[i]) << "v=" << v;
      ASSERT_EQ(a.NeighborDists(v)[i], b.NeighborDists(v)[i]) << "v=" << v;
    }
  }
}

// A live-mutated index (inserts, removes, one compacted shard) survives
// SaveShards/LoadShards bit-exactly: same results, same id space, and the
// write path keeps working on the loaded copy.
TEST_F(LifecycleTest, MutatedShardPersistenceRoundtrip) {
  const std::string prefix = ::testing::TempDir() + "/lifecycle_shards";
  const ShardBuildOptions options = MutableOptions(false, false);
  ShardedIndex index = ShardedIndex::Build(*base_, 2, options);
  auto live = InitialLiveSet();
  const auto inserted = ApplyMixedWorkload(index, live);
  ASSERT_TRUE(index.Compact(0));

  const auto routed = RoutedQueries(1024);
  const auto before = index.SearchBatch(routed, core::SearchKernel::kGanns);
  ASSERT_TRUE(index.SaveShards(prefix));

  auto loaded = ShardedIndex::LoadShards(prefix, *base_, 2, options);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), index.size());
  EXPECT_EQ(loaded->SearchBatch(routed, core::SearchKernel::kGanns), before);

  // The id map is restored: a surviving inserted point can be removed, a
  // dead one cannot, and new ids never collide with saved ones.
  const VertexId survivor = *std::find_if(
      inserted.begin(), inserted.end(),
      [&](VertexId gid) { return live.count(gid) > 0; });
  EXPECT_TRUE(loaded->Remove(survivor));
  EXPECT_FALSE(loaded->Remove(survivor));
  const auto fresh_gid = loaded->Insert(base_->Point(0));
  ASSERT_TRUE(fresh_gid.has_value());
  EXPECT_EQ(live.count(*fresh_gid), 0u);

  std::remove((prefix + ".shard0").c_str());
  std::remove((prefix + ".shard1").c_str());
}

// A shard drained to zero live points serves empty rows (no kernel launch)
// and revives cleanly on the next insert.
TEST_F(LifecycleTest, EmptyShardServesNothingAndRevives) {
  const data::Dataset small =
      data::GenerateBase(data::PaperDataset("SIFT1M"), 8, 5);
  ShardedIndex index =
      ShardedIndex::Build(small, 1, MutableOptions(false, false));
  for (VertexId v = 0; v < 8; ++v) ASSERT_TRUE(index.Remove(v));
  EXPECT_EQ(index.size(), 0u);

  const std::uint64_t launched = index.kernel_queries();
  std::vector<RoutedQuery> routed(1);
  routed[0].query = queries_->Point(0);
  routed[0].k = kK;
  routed[0].budget = 64;
  const auto empty = index.SearchBatch(routed, core::SearchKernel::kGanns);
  ASSERT_EQ(empty.size(), 1u);
  EXPECT_TRUE(empty[0].empty());
  EXPECT_EQ(index.kernel_queries(), launched);  // nothing to search

  const auto gid = index.Insert(base_->Point(0));
  ASSERT_TRUE(gid.has_value());
  const auto revived = index.SearchBatch(routed, core::SearchKernel::kGanns);
  ASSERT_EQ(revived.size(), 1u);
  ASSERT_EQ(revived[0].size(), 1u);
  EXPECT_EQ(revived[0][0].id, *gid);
}

// Update latency histograms and the tombstone gauge are wired through the
// metrics registry — and only when metrics collection is enabled.
TEST_F(LifecycleTest, UpdateMetricsAreRecorded) {
  obs::SetMetricsEnabled(true);
  obs::MetricsRegistry::Global().Reset();
  {
    ShardedIndex index =
        ShardedIndex::Build(*base_, 1, MutableOptions(false, false));
    ASSERT_TRUE(index.Insert(base_->Point(0)).has_value());
    ASSERT_TRUE(index.Remove(0));
    ASSERT_TRUE(index.Compact(0));
    auto& registry = obs::MetricsRegistry::Global();
    EXPECT_EQ(registry.GetHdr("update.insert_latency_us").count(), 1u);
    EXPECT_EQ(registry.GetHdr("update.remove_latency_us").count(), 1u);
    EXPECT_EQ(registry.GetCounter("serve.compactions").value(), 1u);
    EXPECT_DOUBLE_EQ(registry.GetGauge("serve.tombstone_fraction").value(),
                     0.0);
  }
  obs::SetMetricsEnabled(false);
  obs::MetricsRegistry::Global().Reset();
}

}  // namespace
}  // namespace serve
}  // namespace ganns
