// End-to-end smoke tests: build graphs on a small synthetic corpus, run all
// three search paths (CPU beam search, SONG, GANNS), and check recall and
// the core cross-algorithm invariants. Finer-grained behaviour is covered by
// the per-module suites.

#include <gtest/gtest.h>

#include "core/ganns_search.h"
#include "core/ggraphcon.h"
#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "graph/cpu_nsw.h"
#include "song/song_search.h"

namespace ganns {
namespace {

class SmokeTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kBasePoints = 2000;
  static constexpr std::size_t kQueries = 50;
  static constexpr std::size_t kK = 10;

  void SetUp() override {
    const data::DatasetSpec& spec = data::PaperDataset("SIFT1M");
    base_ = std::make_unique<data::Dataset>(
        data::GenerateBase(spec, kBasePoints, /*seed=*/1));
    queries_ = std::make_unique<data::Dataset>(
        data::GenerateQueries(spec, kQueries, kBasePoints, /*seed=*/1));
    truth_ = std::make_unique<data::GroundTruth>(
        data::BruteForceKnn(*base_, *queries_, kK));
  }

  std::unique_ptr<data::Dataset> base_;
  std::unique_ptr<data::Dataset> queries_;
  std::unique_ptr<data::GroundTruth> truth_;
};

TEST_F(SmokeTest, CpuNswBuildAndBeamSearchReachHighRecall) {
  const graph::CpuBuildResult built = graph::BuildNswCpu(*base_, {});
  EXPECT_GT(built.sim_seconds, 0);

  std::vector<std::vector<VertexId>> results(queries_->size());
  for (std::size_t q = 0; q < queries_->size(); ++q) {
    const auto found =
        graph::BeamSearch(built.graph, *base_, queries_->Point(q), kK,
                          /*ef=*/64, /*entry=*/0);
    for (const auto& n : found) results[q].push_back(n.id);
  }
  EXPECT_GE(data::MeanRecall(results, *truth_, kK), 0.85);
}

TEST_F(SmokeTest, GannsSearchMatchesRecallOfBeamSearchOnSameGraph) {
  const graph::CpuBuildResult built = graph::BuildNswCpu(*base_, {});
  gpusim::Device device;

  core::GannsParams params;
  params.k = kK;
  params.l_n = 64;
  const graph::BatchSearchResult batch = core::GannsSearchBatch(
      device, built.graph, *base_, *queries_, params);
  EXPECT_EQ(batch.results.size(), kQueries);
  EXPECT_GT(batch.qps, 0);
  EXPECT_GE(data::MeanRecall(batch.results, *truth_, kK), 0.85);
}

TEST_F(SmokeTest, SongSearchMatchesRecallOfBeamSearchOnSameGraph) {
  const graph::CpuBuildResult built = graph::BuildNswCpu(*base_, {});
  gpusim::Device device;

  song::SongParams params;
  params.k = kK;
  params.queue_size = 64;
  const graph::BatchSearchResult batch = song::SongSearchBatch(
      device, built.graph, *base_, *queries_, params);
  EXPECT_GE(data::MeanRecall(batch.results, *truth_, kK), 0.85);
}

TEST_F(SmokeTest, GGraphConGraphQualityMatchesCpuGraph) {
  gpusim::Device device;
  core::GpuBuildParams params;
  params.num_groups = 8;
  const core::GpuBuildResult gpu_built =
      core::BuildNswGGraphCon(device, *base_, params);
  EXPECT_GT(gpu_built.sim_seconds, 0);

  core::GannsParams search;
  search.k = kK;
  search.l_n = 64;
  const graph::BatchSearchResult batch = core::GannsSearchBatch(
      device, gpu_built.graph, *base_, *queries_, search);
  EXPECT_GE(data::MeanRecall(batch.results, *truth_, kK), 0.85);
}

TEST_F(SmokeTest, GannsIsFasterThanSongAtSameSetting) {
  const graph::CpuBuildResult built = graph::BuildNswCpu(*base_, {});
  gpusim::Device device;

  core::GannsParams gparams;
  gparams.k = kK;
  gparams.l_n = 64;
  const auto ganns = core::GannsSearchBatch(device, built.graph, *base_,
                                            *queries_, gparams);

  song::SongParams sparams;
  sparams.k = kK;
  sparams.queue_size = 64;
  const auto song_result = song::SongSearchBatch(device, built.graph, *base_,
                                                 *queries_, sparams);
  // The headline claim: same-budget GANNS beats SONG in simulated time.
  EXPECT_GT(ganns.qps, song_result.qps);
}

}  // namespace
}  // namespace ganns
