// Unit and property tests for the SONG baseline: the min-max heap, the
// bounded max-heap, the open-addressing hash set, and the three-stage
// search kernel's equivalence with the CPU reference search.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "graph/cpu_nsw.h"
#include "song/bounded_max_heap.h"
#include "song/minmax_heap.h"
#include "song/open_hash.h"
#include "song/song_search.h"

namespace ganns {
namespace song {
namespace {

graph::Neighbor N(float dist, VertexId id) { return {dist, id}; }

TEST(MinMaxHeapTest, MinAndMaxTrackExtremes) {
  MinMaxHeap heap(10);
  heap.InsertBounded(N(5, 1));
  heap.InsertBounded(N(1, 2));
  heap.InsertBounded(N(9, 3));
  heap.InsertBounded(N(3, 4));
  EXPECT_EQ(heap.Min().id, 2u);
  EXPECT_EQ(heap.Max().id, 3u);
  heap.PopMin();
  EXPECT_EQ(heap.Min().id, 4u);
  heap.PopMax();
  EXPECT_EQ(heap.Max().id, 1u);
  EXPECT_EQ(heap.size(), 2u);
}

TEST(MinMaxHeapTest, BoundedInsertEvictsMaxOnlyWhenBetter) {
  MinMaxHeap heap(3);
  heap.InsertBounded(N(1, 1));
  heap.InsertBounded(N(2, 2));
  heap.InsertBounded(N(3, 3));
  EXPECT_TRUE(heap.full());
  // Worse than the max: rejected.
  EXPECT_FALSE(heap.InsertBounded(N(4, 4)));
  EXPECT_EQ(heap.Max().id, 3u);
  // Better than the max: replaces it.
  EXPECT_TRUE(heap.InsertBounded(N(1.5f, 5)));
  EXPECT_EQ(heap.Max().id, 2u);
  EXPECT_EQ(heap.size(), 3u);
}

TEST(MinMaxHeapTest, OpsCounterGrows) {
  MinMaxHeap heap(8);
  const std::size_t before = heap.ops();
  for (int i = 0; i < 8; ++i) heap.InsertBounded(N(static_cast<float>(i), i));
  EXPECT_GT(heap.ops(), before);
}

struct HeapCase {
  std::uint64_t seed;
  std::size_t capacity;
  int operations;
};

class MinMaxHeapProperty : public ::testing::TestWithParam<HeapCase> {};

// Randomized differential test against a std::multiset reference.
TEST_P(MinMaxHeapProperty, MatchesOrderedSetReference) {
  const auto [seed, capacity, operations] = GetParam();
  Rng rng(seed);
  MinMaxHeap heap(capacity);
  std::multiset<graph::Neighbor> reference;

  for (int op = 0; op < operations; ++op) {
    const int choice = static_cast<int>(rng.NextBounded(10));
    if (choice < 6) {
      const graph::Neighbor x =
          N(static_cast<float>(rng.NextBounded(50)),
            static_cast<VertexId>(rng.NextBounded(1000)));
      // Bounded insert semantics mirrored on the reference.
      if (reference.size() == capacity) {
        auto last = std::prev(reference.end());
        if (x < *last) {
          reference.erase(last);
          reference.insert(x);
          EXPECT_TRUE(heap.InsertBounded(x));
        } else {
          EXPECT_FALSE(heap.InsertBounded(x));
        }
      } else {
        EXPECT_TRUE(heap.InsertBounded(x));
        reference.insert(x);
      }
    } else if (choice < 8) {
      if (reference.empty()) continue;
      EXPECT_EQ(heap.Min(), *reference.begin());
      heap.PopMin();
      reference.erase(reference.begin());
    } else {
      if (reference.empty()) continue;
      EXPECT_EQ(heap.Max(), *std::prev(reference.end()));
      heap.PopMax();
      reference.erase(std::prev(reference.end()));
    }
    ASSERT_EQ(heap.size(), reference.size());
    if (!reference.empty()) {
      ASSERT_EQ(heap.Min(), *reference.begin());
      ASSERT_EQ(heap.Max(), *std::prev(reference.end()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomizedRuns, MinMaxHeapProperty,
    ::testing::Values(HeapCase{1, 1, 300}, HeapCase{2, 2, 300},
                      HeapCase{3, 3, 500}, HeapCase{4, 7, 500},
                      HeapCase{5, 16, 1000}, HeapCase{6, 64, 2000},
                      HeapCase{7, 5, 1000}, HeapCase{8, 33, 1500}));

TEST(BoundedMaxHeapTest, KeepsBestEntriesUpToCapacity) {
  BoundedMaxHeap heap(3);
  EXPECT_TRUE(heap.InsertBounded(N(5, 1)));
  EXPECT_TRUE(heap.InsertBounded(N(3, 2)));
  EXPECT_TRUE(heap.InsertBounded(N(7, 3)));
  EXPECT_EQ(heap.Max().id, 3u);
  EXPECT_FALSE(heap.InsertBounded(N(9, 4)));  // worse than worst
  EXPECT_TRUE(heap.InsertBounded(N(1, 5)));   // evicts id 3
  const auto sorted = heap.SortedAscending();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].id, 5u);
  EXPECT_EQ(sorted[1].id, 2u);
  EXPECT_EQ(sorted[2].id, 1u);
}

class BoundedMaxHeapProperty : public ::testing::TestWithParam<HeapCase> {};

TEST_P(BoundedMaxHeapProperty, KeepsExactlyTheSmallestK) {
  const auto [seed, capacity, operations] = GetParam();
  Rng rng(seed);
  BoundedMaxHeap heap(capacity);
  std::vector<graph::Neighbor> all;
  for (int i = 0; i < operations; ++i) {
    const graph::Neighbor x =
        N(static_cast<float>(rng.NextBounded(10000)),
          static_cast<VertexId>(i));
    heap.InsertBounded(x);
    all.push_back(x);
  }
  std::sort(all.begin(), all.end());
  all.resize(std::min<std::size_t>(capacity, all.size()));
  EXPECT_EQ(heap.SortedAscending(), all);
}

INSTANTIATE_TEST_SUITE_P(
    RandomizedRuns, BoundedMaxHeapProperty,
    ::testing::Values(HeapCase{11, 1, 100}, HeapCase{12, 4, 200},
                      HeapCase{13, 10, 500}, HeapCase{14, 64, 1000},
                      HeapCase{15, 100, 100}));

TEST(OpenHashSetTest, InsertAndContains) {
  OpenHashSet set(8);
  EXPECT_FALSE(set.Contains(5));
  EXPECT_TRUE(set.Insert(5));
  EXPECT_FALSE(set.Insert(5));
  EXPECT_TRUE(set.Contains(5));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_GT(set.ops(), 0u);
}

TEST(OpenHashSetTest, GrowsPastInitialCapacityWithoutLosingElements) {
  OpenHashSet set(2);
  const std::size_t initial_capacity = set.capacity();
  for (VertexId v = 0; v < 1000; ++v) {
    EXPECT_TRUE(set.Insert(v * 7 + 1));
  }
  EXPECT_GT(set.capacity(), initial_capacity);
  for (VertexId v = 0; v < 1000; ++v) {
    EXPECT_TRUE(set.Contains(v * 7 + 1));
    EXPECT_FALSE(set.Contains(v * 7 + 2));
  }
}

TEST(OpenHashSetTest, MatchesStdSetOnRandomStream) {
  Rng rng(99);
  OpenHashSet set(16);
  std::set<VertexId> reference;
  for (int i = 0; i < 5000; ++i) {
    const VertexId v = static_cast<VertexId>(rng.NextBounded(800));
    EXPECT_EQ(set.Insert(v), reference.insert(v).second);
  }
  EXPECT_EQ(set.size(), reference.size());
}

// ---- SONG search kernel behaviour. ----

class SongSearchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = std::make_unique<data::Dataset>(
        data::GenerateBase(data::PaperDataset("SIFT1M"), 800, 4));
    built_ = std::make_unique<graph::CpuBuildResult>(
        graph::BuildNswCpu(*base_, {}));
  }
  std::unique_ptr<data::Dataset> base_;
  std::unique_ptr<graph::CpuBuildResult> built_;
};

TEST_F(SongSearchTest, AgreesWithCpuBeamSearchAtSameBudget) {
  // SONG is Algorithm 1 with bounded structures; with a roomy queue its
  // recall must match the CPU reference within noise.
  const data::Dataset queries = data::GenerateQueries(
      data::PaperDataset("SIFT1M"), 40, 800, 4);
  const data::GroundTruth truth = data::BruteForceKnn(*base_, queries, 10);

  gpusim::Device device;
  SongParams params;
  params.k = 10;
  params.queue_size = 64;
  const auto batch = SongSearchBatch(device, built_->graph, *base_, queries,
                                     params);

  std::vector<std::vector<VertexId>> cpu_results(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    for (const auto& n :
         graph::BeamSearch(built_->graph, *base_, queries.Point(q), 10, 64, 0)) {
      cpu_results[q].push_back(n.id);
    }
  }
  const double song_recall = data::MeanRecall(batch.results, truth, 10);
  const double cpu_recall = data::MeanRecall(cpu_results, truth, 10);
  EXPECT_NEAR(song_recall, cpu_recall, 0.05);
}

TEST_F(SongSearchTest, DeterministicAcrossRuns) {
  gpusim::Device device;
  SongParams params;
  params.k = 5;
  params.queue_size = 32;
  gpusim::BlockContext block_a(0, 32, 48 * 1024, &device.spec().cost);
  gpusim::BlockContext block_b(0, 32, 48 * 1024, &device.spec().cost);
  const auto a = SongSearchOne(block_a, built_->graph, *base_,
                               base_->Point(42), params, 0);
  const auto b = SongSearchOne(block_b, built_->graph, *base_,
                               base_->Point(42), params, 0);
  EXPECT_EQ(a, b);
  EXPECT_DOUBLE_EQ(block_a.cost().total_cycles(), block_b.cost().total_cycles());
}

TEST_F(SongSearchTest, LargerQueueRaisesRecallAndCost) {
  const data::Dataset queries = data::GenerateQueries(
      data::PaperDataset("SIFT1M"), 40, 800, 4);
  const data::GroundTruth truth = data::BruteForceKnn(*base_, queries, 10);
  gpusim::Device device;

  SongParams small;
  small.k = 10;
  small.queue_size = 10;
  const auto batch_small =
      SongSearchBatch(device, built_->graph, *base_, queries, small);

  SongParams large;
  large.k = 10;
  large.queue_size = 128;
  const auto batch_large =
      SongSearchBatch(device, built_->graph, *base_, queries, large);

  EXPECT_GT(data::MeanRecall(batch_large.results, truth, 10),
            data::MeanRecall(batch_small.results, truth, 10) - 1e-9);
  EXPECT_GT(batch_large.sim_seconds, batch_small.sim_seconds);
}

TEST_F(SongSearchTest, DataStructureOpsDominateOnHostLane) {
  // The motivating observation (Figure 7): SONG's serial data-structure
  // maintenance is the bottleneck on moderate-dimension data.
  gpusim::Device device;
  SongParams params;
  params.k = 10;
  params.queue_size = 64;
  const data::Dataset queries = data::GenerateQueries(
      data::PaperDataset("SIFT1M"), 20, 800, 4);
  const auto batch =
      SongSearchBatch(device, built_->graph, *base_, queries, params);
  const double ds = batch.kernel.work_cycles[static_cast<int>(
      gpusim::CostCategory::kDataStructure)];
  EXPECT_GT(ds / batch.kernel.work_total(), 0.5);
}

TEST_F(SongSearchTest, StatsAreConsistent) {
  gpusim::Device device;
  SongParams params;
  params.k = 10;
  params.queue_size = 32;
  SongSearchStats stats;
  gpusim::BlockContext block(0, 32, 48 * 1024, &device.spec().cost);
  const auto found = SongSearchOne(block, built_->graph, *base_,
                                   base_->Point(7), params, 0, &stats);
  EXPECT_LE(found.size(), params.k);
  EXPECT_GT(stats.iterations, 0u);
  EXPECT_GE(stats.distance_computations, stats.iterations);
  EXPECT_GT(stats.host_ops, 0u);
}

}  // namespace
}  // namespace song
}  // namespace ganns
