// Tests for the dataset hardness statistics (Table I commentary support).

#include <gtest/gtest.h>

#include "data/statistics.h"
#include "data/synthetic.h"

namespace ganns {
namespace data {
namespace {

TEST(StatisticsTest, ContrastAboveOneOnClusteredData) {
  const Dataset base = GenerateBase(PaperDataset("SIFT1M"), 800, 1);
  const DatasetStats stats = ComputeStats(base, 60, 10, 1);
  EXPECT_EQ(stats.sampled_points, 60u);
  EXPECT_GT(stats.mean_pair_distance, stats.mean_nn_distance);
  EXPECT_GT(stats.relative_contrast, 1.5);
  EXPECT_GT(stats.lid_estimate, 1.0);
}

TEST(StatisticsTest, HighDimensionRaisesIntrinsicDimensionality) {
  const Dataset low = GenerateBase(PaperDataset("SIFT10M"), 800, 1);   // 32-d
  const Dataset high = GenerateBase(PaperDataset("GIST"), 800, 1);     // 960-d
  const DatasetStats low_stats = ComputeStats(low, 60, 10, 1);
  const DatasetStats high_stats = ComputeStats(high, 60, 10, 1);
  // GIST's hardness is its dimensionality (§V "Datasets").
  EXPECT_GT(high_stats.lid_estimate, 2 * low_stats.lid_estimate);
}

TEST(StatisticsTest, NearDuplicateCorpusHasHighContrast) {
  // UKBench models groups of 4 near-duplicate images: the NN is much closer
  // than a random pair, which is why recall approaches 1 there.
  const Dataset easy = GenerateBase(PaperDataset("UKBench"), 800, 1);
  const Dataset hard = GenerateBase(PaperDataset("GIST"), 800, 1);
  EXPECT_GT(ComputeStats(easy, 60, 10, 1).relative_contrast,
            ComputeStats(hard, 60, 10, 1).relative_contrast);
}

TEST(StatisticsTest, DeterministicForFixedSeed) {
  const Dataset base = GenerateBase(PaperDataset("DEEP"), 500, 2);
  const DatasetStats a = ComputeStats(base, 40, 10, 7);
  const DatasetStats b = ComputeStats(base, 40, 10, 7);
  EXPECT_DOUBLE_EQ(a.relative_contrast, b.relative_contrast);
  EXPECT_DOUBLE_EQ(a.lid_estimate, b.lid_estimate);
}

}  // namespace
}  // namespace data
}  // namespace ganns
