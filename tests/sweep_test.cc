// Tests for the benchmark harness helpers every figure bench relies on:
// workload construction, parameter ladders, operating-point selection, and
// the on-disk graph cache.

#include <cstdio>

#include <gtest/gtest.h>

#include "bench/bench_common.h"
#include "bench/sweep.h"

namespace ganns {
namespace bench {
namespace {

TEST(BenchConfigTest, PointsScaleWithDatasetSizeRatio) {
  BenchConfig config;
  config.scale = 10000;
  EXPECT_EQ(config.PointsFor(data::PaperDataset("SIFT1M")), 10000u);
  EXPECT_EQ(config.PointsFor(data::PaperDataset("SIFT10M")), 100000u);
  EXPECT_EQ(config.PointsFor(data::PaperDataset("NYTimes")), 2900u);
  // Floor keeps tiny scales meaningful.
  config.scale = 100;
  EXPECT_EQ(config.PointsFor(data::PaperDataset("NYTimes")), 1000u);
}

TEST(SweepTest, LaddersAscendInBudgetAndRespectK) {
  const auto ganns_ladder = DefaultGannsLadder(10);
  ASSERT_FALSE(ganns_ladder.empty());
  for (const auto& params : ganns_ladder) {
    EXPECT_GE(params.l_n, 10u);
    EXPECT_EQ(params.l_n & (params.l_n - 1), 0u);  // power of two
    EXPECT_LE(params.EffectiveE(), params.l_n);
  }
  // k = 100 prunes settings whose l_n < k.
  for (const auto& params : DefaultGannsLadder(100)) {
    EXPECT_GE(params.l_n, 100u);
  }
  for (const auto& params : DefaultSongLadder(100)) {
    EXPECT_GE(params.queue_size, 100u);
  }
}

TEST(SweepTest, ClosestToRecallPicksNearestPoint) {
  std::vector<SweepPoint> points(3);
  points[0].recall = 0.5;
  points[1].recall = 0.82;
  points[2].recall = 0.95;
  EXPECT_EQ(ClosestIndexToRecall(points, 0.8), 1u);
  EXPECT_EQ(ClosestIndexToRecall(points, 0.99), 2u);
  EXPECT_EQ(ClosestIndexToRecall(points, 0.0), 0u);
  EXPECT_EQ(&ClosestToRecall(points, 0.8), &points[1]);
}

TEST(SweepTest, MeasurePointsCarryBreakdownFractions) {
  BenchConfig config;
  config.scale = 1200;
  config.queries = 20;
  const Workload workload = MakeWorkload("SIFT1M", config, 10);
  EXPECT_EQ(workload.base.size(), 1200u);
  EXPECT_EQ(workload.queries.size(), 20u);
  EXPECT_EQ(workload.truth.neighbors.size(), 20u);

  const graph::ProximityGraph nsw = CachedNswGraph(workload, {}, config);
  gpusim::Device device;
  core::GannsParams params;
  params.k = 10;
  params.l_n = 64;
  const SweepPoint point = MeasureGanns(device, nsw, workload, params, 10);
  EXPECT_GT(point.qps, 0);
  EXPECT_GT(point.recall, 0.5);
  EXPECT_GT(point.distance_fraction, 0);
  EXPECT_GT(point.ds_fraction, 0);
  EXPECT_LE(point.distance_fraction + point.ds_fraction, 1.0 + 1e-9);
  EXPECT_EQ(point.algorithm, "GANNS");
}

TEST(SweepTest, GraphCacheRoundTripsThroughDisk) {
  BenchConfig config;
  config.scale = 600;
  config.queries = 5;
  config.seed = 99;
  const Workload workload = MakeWorkload("Notre", config, 10);
  const graph::ProximityGraph first = CachedNswGraph(workload, {}, config);
  const graph::ProximityGraph second = CachedNswGraph(workload, {}, config);
  ASSERT_EQ(first.num_vertices(), second.num_vertices());
  for (std::size_t v = 0; v < first.num_vertices(); ++v) {
    const auto a = first.Neighbors(static_cast<VertexId>(v));
    const auto b = second.Neighbors(static_cast<VertexId>(v));
    for (std::size_t s = 0; s < first.d_max(); ++s) ASSERT_EQ(a[s], b[s]);
  }
  // Clean up the cache entry this test created.
  std::remove(("ganns_cache/" + workload.base.name() + "_d128_n600_dmin16"
               "_dmax32_ef32_s99.nsw").c_str());
}

}  // namespace
}  // namespace bench
}  // namespace ganns
