// Tests for the visited-structure variants behind SONG's candidates
// locating stage (§III-A design space).

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "graph/cpu_nsw.h"
#include "song/song_search.h"
#include "song/visited.h"

namespace ganns {
namespace song {
namespace {

gpusim::CostParams Params() { return gpusim::CostParams{}; }

TEST(VisitedSetTest, HashBoundedSupportsRemoval) {
  auto set = MakeVisitedSet(VisitedKind::kHashBounded, 16, 1000, Params());
  EXPECT_TRUE(set->Insert(5));
  EXPECT_FALSE(set->Insert(5));
  set->Remove(5);
  EXPECT_TRUE(set->Insert(5));  // forgotten, re-insertable
  EXPECT_GT(set->cycles(), 0);
}

TEST(VisitedSetTest, HashUnboundedIgnoresRemoval) {
  auto set = MakeVisitedSet(VisitedKind::kHashUnbounded, 16, 1000, Params());
  EXPECT_TRUE(set->Insert(5));
  set->Remove(5);
  EXPECT_FALSE(set->Insert(5));  // still remembered
}

TEST(VisitedSetTest, BitmapIsExactOverUniverse) {
  auto set = MakeVisitedSet(VisitedKind::kBitmap, 16, 4096, Params());
  Rng rng(3);
  std::vector<bool> reference(4096, false);
  for (int i = 0; i < 10000; ++i) {
    const VertexId v = static_cast<VertexId>(rng.NextBounded(4096));
    const bool fresh = !reference[v];
    reference[v] = true;
    EXPECT_EQ(set->Insert(v), fresh);
  }
}

TEST(VisitedSetTest, BitmapProbesCostMoreThanHashProbes) {
  // Both sized for the stream, so the hash never rebuilds and the per-probe
  // prices are compared directly.
  auto bitmap = MakeVisitedSet(VisitedKind::kBitmap, 128, 4096, Params());
  auto hash = MakeVisitedSet(VisitedKind::kHashBounded, 128, 4096, Params());
  for (VertexId v = 0; v < 100; ++v) {
    bitmap->Insert(v);
    hash->Insert(v);
  }
  // The uncoalesced global accesses make the bitmap the expensive option —
  // the paper's reason for rejecting it.
  EXPECT_GT(bitmap->cycles(), 2 * hash->cycles());
}

TEST(VisitedSetTest, BloomNeverForgetsAndHasLowFalsePositiveRate) {
  auto set = MakeVisitedSet(VisitedKind::kBloom, 64, 1 << 20, Params());
  // No false negatives: everything inserted is remembered.
  for (VertexId v = 0; v < 200; ++v) {
    set->Insert(v * 97 + 13);
  }
  std::size_t repeated_fresh = 0;
  for (VertexId v = 0; v < 200; ++v) {
    if (set->Insert(v * 97 + 13)) ++repeated_fresh;
  }
  EXPECT_EQ(repeated_fresh, 0u);

  // False positives are rare while the stream stays within the sizing hint.
  // (Insert fills the filter as it probes, so the whole stream counts
  // toward the fill level — the saturation drawback of using a bloom filter
  // as a long search's visited set.)
  auto sized_set = MakeVisitedSet(VisitedKind::kBloom, 600, 1 << 20, Params());
  std::size_t false_positives = 0;
  for (VertexId v = 0; v < 600; ++v) {
    if (!sized_set->Insert(v * 131 + 7)) ++false_positives;
  }
  EXPECT_LT(false_positives, 30u);  // < 5% over 600 distinct inserts
}

TEST(VisitedSetTest, SongRunsWithEveryVariant) {
  const data::Dataset base =
      data::GenerateBase(data::PaperDataset("SIFT1M"), 600, 5);
  const data::Dataset queries =
      data::GenerateQueries(data::PaperDataset("SIFT1M"), 20, 600, 5);
  const data::GroundTruth truth = data::BruteForceKnn(base, queries, 10);
  const graph::CpuBuildResult built = graph::BuildNswCpu(base, {});
  gpusim::Device device;

  for (const VisitedKind kind :
       {VisitedKind::kHashBounded, VisitedKind::kHashUnbounded,
        VisitedKind::kBloom, VisitedKind::kBitmap}) {
    SongParams params;
    params.k = 10;
    params.queue_size = 64;
    params.visited = kind;
    const auto batch = SongSearchBatch(device, built.graph, base, queries,
                                       params);
    EXPECT_GE(data::MeanRecall(batch.results, truth, 10), 0.7)
        << VisitedKindName(kind);
  }
}

TEST(VisitedSetTest, UnboundedHashComputesFewerDistancesThanBounded) {
  const data::Dataset base =
      data::GenerateBase(data::PaperDataset("SIFT1M"), 800, 5);
  const graph::CpuBuildResult built = graph::BuildNswCpu(base, {});
  gpusim::Device device;

  SongSearchStats bounded_stats;
  SongSearchStats unbounded_stats;
  for (VertexId q = 0; q < 20; ++q) {
    SongParams params;
    params.k = 10;
    params.queue_size = 64;
    gpusim::BlockContext block_a(0, 32, 48 * 1024, &device.spec().cost);
    SongSearchOne(block_a, built.graph, base, base.Point(q), params, 0,
                  &bounded_stats);
    params.visited = VisitedKind::kHashUnbounded;
    gpusim::BlockContext block_b(0, 32, 48 * 1024, &device.spec().cost);
    SongSearchOne(block_b, built.graph, base, base.Point(q), params, 0,
                  &unbounded_stats);
  }
  // Forgetting evictees (bounded) forces re-computation.
  EXPECT_GT(bounded_stats.distance_computations,
            unbounded_stats.distance_computations);
}

}  // namespace
}  // namespace song
}  // namespace ganns
