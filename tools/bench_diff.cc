// bench_diff — the perf-regression gate over BENCH_*.json artifacts:
//
//   bench_diff <baseline.json> <candidate.json> [--min pattern=RATIO ...]
//              [--max pattern=RATIO ...]
//
// Both files are flattened to dotted numeric paths (arrays by index, e.g.
// results.0.closed.sim_qps). A --min rule requires candidate >= RATIO *
// baseline for every path containing `pattern` (guards throughput/recall);
// a --max rule requires candidate <= RATIO * baseline (guards latency and
// error counts). When a path matches several rules of one kind the
// last-specified rule wins, so broad defaults can be narrowed per metric.
// Paths matching no rule are informational: printed, never gated.
//
// With no rules on the command line the serve/update-bench defaults apply:
//   --min quantized=0.5        BENCH_quantized rows (sim_qps, resident bytes);
//                              listed first so the recall rule below still
//                              wins for quantized recall paths
//   --min recall=0.95          recall is deterministic; 5% guards rounding
//   --min sim_qps=0.5          simulated QPS (serve closed-loop, cluster rows)
//   --min open.sim_qps=0.0     open-loop batch shapes are wall-timed, so its
//                              sim QPS is machine-dependent; listed after the
//                              broad sim_qps rule so it wins and effectively
//                              ungates those paths
//   --min sim_ups=0.5          update-path simulated updates/s (BENCH_update)
//   --min served=1.0           served count must never drop
// Wall-clock metrics (wall_qps, latency_us) stay informational by default —
// they measure the build machine, not the code.
//
// A baseline path missing from the candidate fails the gate. Exit 0 iff
// every gated metric passes; 1 on regression or missing metric; 2 on
// usage/parse errors. Used by ctest against committed baselines in
// bench/baselines/.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "tools/json_reader.h"

namespace {

using ganns::tools::Json;
using ganns::tools::JsonPtr;

struct Rule {
  std::string pattern;
  double ratio = 1.0;
  bool is_min = true;  // min: cand >= ratio*base; max: cand <= ratio*base
};

/// Depth-first flatten of every numeric leaf into dotted paths.
void Flatten(const Json& node, const std::string& prefix,
             std::map<std::string, double>& out) {
  switch (node.kind) {
    case Json::Kind::kNumber:
      out[prefix] = node.number;
      return;
    case Json::Kind::kObject:
      for (const auto& [key, value] : node.object) {
        Flatten(*value, prefix.empty() ? key : prefix + "." + key, out);
      }
      return;
    case Json::Kind::kArray:
      for (std::size_t i = 0; i < node.array.size(); ++i) {
        Flatten(*node.array[i], prefix + "." + std::to_string(i), out);
      }
      return;
    default:
      return;  // strings/bools/nulls are not gateable metrics
  }
}

/// Last matching rule of either kind, or nullptr for informational paths.
const Rule* MatchRule(const std::vector<Rule>& rules,
                      const std::string& path) {
  const Rule* match = nullptr;
  for (const Rule& rule : rules) {
    if (path.find(rule.pattern) != std::string::npos) match = &rule;
  }
  return match;
}

bool ParseRuleSpec(const char* spec, bool is_min, std::vector<Rule>* rules) {
  const char* eq = std::strchr(spec, '=');
  if (eq == nullptr || eq == spec) return false;
  char* end = nullptr;
  const double ratio = std::strtod(eq + 1, &end);
  if (end == eq + 1 || *end != '\0' || ratio < 0) return false;
  rules->push_back({std::string(spec, eq), ratio, is_min});
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: bench_diff <baseline.json> <candidate.json> "
               "[--min pattern=RATIO ...] [--max pattern=RATIO ...]\n");
  return 2;
}

/// Prints the candidate's provenance block (git sha, date, host, flags) so
/// regression reports say what produced the numbers.
void PrintProvenance(const Json& root) {
  const Json* provenance = root.Get("provenance");
  if (provenance == nullptr || !provenance->Is(Json::Kind::kObject)) return;
  std::printf("candidate provenance:");
  for (const auto& [key, value] : provenance->object) {
    if (value->Is(Json::Kind::kString)) {
      std::printf(" %s=%s", key.c_str(), value->string.c_str());
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();

  std::vector<Rule> rules;
  for (int i = 3; i < argc; i += 2) {
    const bool is_min = std::strcmp(argv[i], "--min") == 0;
    const bool is_max = std::strcmp(argv[i], "--max") == 0;
    if ((!is_min && !is_max) || i + 1 >= argc ||
        !ParseRuleSpec(argv[i + 1], is_min, &rules)) {
      return Usage();
    }
  }
  if (rules.empty()) {
    rules = {{"quantized", 0.5, true},
             {"recall", 0.95, true},
             {"sim_qps", 0.5, true},
             {"open.sim_qps", 0.0, true},
             {"sim_ups", 0.5, true},
             {"served", 1.0, true}};
  }

  std::string error;
  const JsonPtr baseline = ganns::tools::ParseJsonFile(argv[1], &error);
  if (baseline == nullptr) {
    std::fprintf(stderr, "baseline: %s\n", error.c_str());
    return 2;
  }
  const JsonPtr candidate = ganns::tools::ParseJsonFile(argv[2], &error);
  if (candidate == nullptr) {
    std::fprintf(stderr, "candidate: %s\n", error.c_str());
    return 2;
  }

  std::map<std::string, double> base_metrics;
  std::map<std::string, double> cand_metrics;
  Flatten(*baseline, "", base_metrics);
  Flatten(*candidate, "", cand_metrics);

  PrintProvenance(*candidate);

  std::size_t gated = 0;
  std::size_t failed = 0;
  for (const auto& [path, base] : base_metrics) {
    // Provenance leaves are identity, not performance.
    if (path.rfind("provenance.", 0) == 0) continue;
    const Rule* rule = MatchRule(rules, path);
    const auto it = cand_metrics.find(path);
    if (it == cand_metrics.end()) {
      if (rule != nullptr) {
        std::printf("FAIL %-40s missing from candidate\n", path.c_str());
        ++gated;
        ++failed;
      }
      continue;
    }
    const double cand = it->second;
    if (rule == nullptr) {
      std::printf("info %-40s %14.4f -> %14.4f\n", path.c_str(), base, cand);
      continue;
    }
    ++gated;
    const bool ok = rule->is_min ? cand >= rule->ratio * base
                                 : cand <= rule->ratio * base;
    std::printf("%s %-40s %14.4f -> %14.4f  (%s %.2fx)\n",
                ok ? "ok  " : "FAIL", path.c_str(), base, cand,
                rule->is_min ? ">=" : "<=", rule->ratio);
    if (!ok) ++failed;
  }

  if (failed > 0) {
    std::printf("bench_diff: %zu of %zu gated metrics regressed\n", failed,
                gated);
    return 1;
  }
  std::printf("bench_diff: %zu gated metrics pass\n", gated);
  return 0;
}
