// ganns — command-line interface to the library, for driving real datasets
// through the index without writing C++:
//
//   ganns gen    --dataset SIFT1M --n 20000 --out base.fvecs
//                [--queries 200 --queries-out queries.fvecs] [--seed 1]
//   ganns build  --base base.fvecs --out index.gix [--metric l2|cosine]
//                [--d-max 32] [--d-min 16] [--groups 64] [--kernel ganns|song]
//                [--hnsw] [--precision float|sq8|pq] [--pq-m 16] [--pq-k 256]
//                [--rerank 4]
//   ganns search --index index.gix --base base.fvecs --queries queries.fvecs
//                --k 10 [--ln 64] [--e 0] [--out results.ivecs]
//                [--trace-out trace.json]
//   ganns eval   --base base.fvecs --queries queries.fvecs
//                --results results.ivecs --k 10 [--metric l2|cosine]
//   ganns profile --dataset SIFT1M --n 10000 [--queries 100] [--seed 1]
//                [--k 10] [--ln 64] [--e 0] [--algo ganns|song]
//                [--trace-out trace.json] [--metrics-out metrics.json]
//   ganns serve-bench --dataset SIFT1M --n 20000 [--queries 500] [--seed 1]
//                [--shards 2] [--k 10] [--budget 64]
//                [--kernel ganns|song|beam] [--hnsw]
//                [--precision float|sq8|pq] [--pq-m 16] [--pq-k 256]
//                [--rerank 4]
//                [--max-batch 32] [--window-us 200] [--queue-cap 1024]
//                [--deadline-us 0] [--save prefix | --load prefix]
//                [--json out.json] [--trace-out trace.json]
//                [--stats-out stats.json] [--prom-out metrics.prom]
//                [--sample 1/N]
//                [--series-out series.jsonl] [--series-interval-ms 100]
//                [--flight-out flight.json] [--slo-fraction 0.8]
//                [--flight-ring 4096] [--hardness-out hardness.jsonl]
//                [--fail-on-reject]
//   ganns cluster-bench --dataset SIFT1M --n 20000 [--queries 400] [--seed 1]
//                [--shards 4] [--nodes 3] [--replication 2]
//                [--selection rr|lo|p2c] [--k 10] [--budget 256]
//                [--kernel ganns|song|beam] [--batch 16]
//                [--crash-node N --crash-at-batch B [--rejoin-after R]]
//                [--drop-pct P] [--delay-pct P] [--delay-us U]
//                [--fault-seed S] [--timeout-us 1000] [--max-attempts 3]
//                [--agg-bytes 8192] [--agg-deadline-us 100]
//                [--verify-single-node] [--json out.json]
//                [--trace-out trace.json] [--stats-out stats.json]
//                [--prom-out metrics.prom] [--sample N]
//                [--federation-out fed.jsonl] [--fed-prom-out fed.prom]
//                [--alerts-out alerts.jsonl] [--federation]
//                [--scrape-interval-us 500] [--slo-deadline-us U]
//                [--alert-rules name:kind:...,name:kind:...]
//   ganns update --dataset SIFT1M --n 20000 [--queries 200] [--seed 1]
//                [--shards 2] [--k 10] [--budget 256]
//                [--inserts N] [--removes N] [--kernel ganns|song|beam]
//                [--ef-insert 64] [--compact-threshold-pct 25]
//                [--host 1] [--no-auto-compact 1] [--compact 1]
//                [--save prefix] [--json out.json] [--trace-out trace.json]
//                [--stats-out stats.json] [--prom-out metrics.prom]
//   ganns stat   <stats.json|cluster report|BENCH_cluster.json>
//                [--metric serve.latency_us] [--quantile p99]
//                [--path counters.cluster.served_queries]
//                [--watch [--iterations N] [--interval-ms 1000]]
//   ganns top    <series.jsonl> [--rows 10] [--follow]
//                [--iterations N] [--interval-ms 1000]
//   ganns cluster-top <federation.jsonl> [--alerts alerts.jsonl] [--rows 10]
//                [--follow] [--iterations N] [--interval-ms 1000]
//
// `update` builds a sharded NSW index, applies a deterministic mixed
// insert/remove workload through the online write paths, and reports the
// mutated graph's recall against a brute-force oracle over the surviving
// points plus update throughput (simulated and wall) and latency
// percentiles as JSON. --host routes updates through the host (uncharged)
// paths; --compact forces a synchronous final compaction of every shard;
// --save persists the mutated shards in the v3 container for `serve-bench
// --load`.
//
// `serve-bench` builds (or reloads via --load) a sharded index over a
// synthetic corpus, starts the online serving engine, submits every query
// closed-loop, and reports QPS + latency percentiles + recall as JSON.
// --save/--load persist the per-shard graphs (`<prefix>.shardN`); a
// truncated or version-mismatched file fails the load with a non-zero
// exit. --trace-out enables request tracing and writes the Perfetto trace
// (per-request span trees on the serving process, optionally sampled with
// --sample); --stats-out writes the metrics registry JSON with HDR
// latency percentiles and exemplar links; --prom-out writes the same
// registry in Prometheus text exposition format.
//
// `serve-bench --fail-on-reject` propagates overload into the exit code:
// when admission control rejected any request the run exits 1 (after
// writing every requested artifact), instead of silently passing with a
// degraded served count — the mode CI load gates should run in.
//
// `cluster-bench` builds a sharded index and serves it through the
// simulated multi-node cluster (src/cluster): N nodes hosting shard
// replicas, per-destination message aggregation, simulated network cost,
// and deterministic fault injection (node crash/rejoin, dropped/delayed
// transfers). Reports recall, simulated QPS, failover/timeout counters,
// per-node stats, and aggregator flush accounting as JSON. With
// --verify-single-node the run exits non-zero unless the cluster's
// k-results are bit-identical to single-node ShardedIndex serving (the
// expected state whenever no candidates were lost).
//
// Any of --federation-out / --fed-prom-out / --alerts-out (or the bare
// --federation switch) turns on the cluster observability plane: every node
// gets a private metrics registry scraped over its simulated NIC on a fixed
// interval (--scrape-interval-us), the merged windows feed the deterministic
// alert engine (default rules, or --alert-rules specs), and the artifacts
// are the federated window JSONL (`ganns cluster-top` input), Prometheus
// text with per-node labels, and the alert transition log. The plane is
// charged off the serving clock and draws no randomness, so results and
// simulated seconds are bit-identical with it on or off. --sample N stamps
// every Nth query as a sampled request whose sub-queries join a Perfetto
// flow across node tracks (requires --trace-out); --slo-deadline-us sets
// the latency SLO the burn-rate alert and slo_headroom derive from.
//
// `stat` reads a --stats-out file back and prints SLO summaries; with
// --metric and --quantile it prints a single number (scriptable, used by
// the ctest gate to cross-check p99 against offline percentiles); with
// --watch it re-reads the file on an interval (a poor man's dashboard over
// an artifact a live serve-bench keeps rewriting).
//
// `top` renders a --series-out time-series ring in the terminal: one row
// per window with QPS, windowed latency percentiles, SLO headroom, queue
// saturation, and drops. --follow re-reads and redraws on an interval;
// --iterations bounds the number of renders (tests use --iterations 1 for
// a single plain-text render).
//
// `profile` generates a synthetic corpus, builds an NSW graph with
// GGraphCon, runs the search with full tracing + per-query profiling, and
// prints a summary. --trace-out writes a Chrome/Perfetto trace_event JSON
// (load at ui.perfetto.dev); --metrics-out writes the metrics registry.
//
// All commands are deterministic for fixed inputs and seeds (trace and
// metrics files included: device events are timestamped in simulated
// cycles).

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_router.h"
#include "core/ganns_index.h"
#include "core/ganns_search.h"
#include "core/ggraphcon.h"
#include "data/ground_truth.h"
#include "data/io.h"
#include "data/quantize.h"
#include "data/synthetic.h"
#include "graph/diagnostics.h"
#include "obs/alerts.h"
#include "obs/federation.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "serve/flight_recorder.h"
#include "serve/serve_engine.h"
#include "song/song_search.h"
#include "tools/json_reader.h"

namespace {

using namespace ganns;

/// --key value argument map with typed accessors.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc;) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        std::fprintf(stderr, "expected --flag, got '%s'\n", argv[i]);
        std::exit(2);
      }
      // A flag followed by another --flag (or nothing) is boolean, so
      // switches like --watch or --hnsw compose anywhere in the line.
      if (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0) {
        values_[argv[i] + 2] = "true";
        i += 1;
      } else {
        values_[argv[i] + 2] = argv[i + 1];
        i += 2;
      }
    }
  }

  std::optional<std::string> Get(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

  std::string Require(const std::string& key) const {
    const auto value = Get(key);
    if (!value.has_value()) {
      std::fprintf(stderr, "missing required flag --%s\n", key.c_str());
      std::exit(2);
    }
    return *value;
  }

  long Int(const std::string& key, long fallback) const {
    const auto value = Get(key);
    return value.has_value() ? std::atol(value->c_str()) : fallback;
  }

  double Double(const std::string& key, double fallback) const {
    const auto value = Get(key);
    return value.has_value() ? std::atof(value->c_str()) : fallback;
  }

  bool Flag(const std::string& key) const { return Get(key).has_value(); }

 private:
  std::map<std::string, std::string> values_;
};

/// Shared --precision/--pq-m/--pq-k/--rerank handling for build and
/// serve-bench (exits with usage error on an unknown precision name).
data::QuantizerOptions ParseQuantizeFlags(const Args& args) {
  data::QuantizerOptions quantize;
  if (const auto name = args.Get("precision"); name.has_value()) {
    const auto precision = data::ParsePrecision(*name);
    if (!precision.has_value()) {
      std::fprintf(stderr, "unknown precision '%s' (use float|sq8|pq)\n",
                   name->c_str());
      std::exit(2);
    }
    quantize.precision = *precision;
  }
  quantize.pq_subspaces = static_cast<std::size_t>(args.Int("pq-m", 16));
  quantize.pq_centroids = static_cast<std::size_t>(args.Int("pq-k", 256));
  quantize.rerank_factor = static_cast<std::size_t>(args.Int("rerank", 4));
  if (quantize.rerank_factor == 0) quantize.rerank_factor = 1;
  return quantize;
}

data::Metric ParseMetric(const Args& args) {
  const std::string name = args.Get("metric").value_or("l2");
  if (name == "l2") return data::Metric::kL2;
  if (name == "cosine") return data::Metric::kCosine;
  std::fprintf(stderr, "unknown metric '%s' (use l2|cosine)\n", name.c_str());
  std::exit(2);
}

data::Dataset LoadFvecsOrDie(const std::string& path, const char* what,
                             data::Metric metric) {
  auto dataset = data::ReadFvecs(path, what, metric);
  if (!dataset.has_value()) {
    std::fprintf(stderr, "failed to read %s from %s\n", what, path.c_str());
    std::exit(1);
  }
  return *std::move(dataset);
}

int CmdGen(const Args& args) {
  const data::DatasetSpec& spec = data::PaperDataset(args.Require("dataset"));
  const std::size_t n = static_cast<std::size_t>(args.Int("n", 20000));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.Int("seed", 1));

  const data::Dataset base = data::GenerateBase(spec, n, seed);
  if (!data::WriteFvecs(args.Require("out"), base)) {
    std::fprintf(stderr, "failed to write %s\n", args.Require("out").c_str());
    return 1;
  }
  std::printf("wrote %zu x %zud base vectors (%s, %s)\n", base.size(),
              base.dim(), spec.name.c_str(),
              spec.metric == data::Metric::kL2 ? "l2" : "cosine");

  if (const auto queries_out = args.Get("queries-out");
      queries_out.has_value()) {
    const std::size_t q = static_cast<std::size_t>(args.Int("queries", 200));
    const data::Dataset queries = data::GenerateQueries(spec, q, n, seed);
    if (!data::WriteFvecs(*queries_out, queries)) {
      std::fprintf(stderr, "failed to write %s\n", queries_out->c_str());
      return 1;
    }
    std::printf("wrote %zu query vectors\n", queries.size());
  }
  return 0;
}

int CmdBuild(const Args& args) {
  const data::Metric metric = ParseMetric(args);
  data::Dataset base = LoadFvecsOrDie(args.Require("base"), "base", metric);

  core::GannsIndex::Options options;
  options.nsw.d_max = static_cast<std::size_t>(args.Int("d-max", 32));
  options.nsw.d_min = static_cast<std::size_t>(args.Int("d-min", 16));
  options.nsw.ef_construction =
      static_cast<std::size_t>(args.Int("ef", 2 * options.nsw.d_min));
  options.num_groups = static_cast<int>(args.Int("groups", 64));
  if (args.Get("kernel").value_or("ganns") == "song") {
    options.construction_kernel = core::SearchKernel::kSong;
  }
  if (args.Flag("hnsw")) options.kind = core::GraphKind::kHnsw;
  options.quantize = ParseQuantizeFlags(args);

  core::GannsIndex index = core::GannsIndex::Build(std::move(base), options);
  const std::string out = args.Require("out");
  if (!index.Save(out)) {
    std::fprintf(stderr, "failed to save index to %s\n", out.c_str());
    return 1;
  }
  std::printf("built %s index over %zu points in %.3f simulated GPU s; "
              "saved to %s\n",
              options.kind == core::GraphKind::kHnsw ? "HNSW" : "NSW",
              index.base().size(), index.timing().build_seconds, out.c_str());
  if (index.quantizer() != nullptr) {
    std::printf("quantized: precision=%s code_bytes=%zu rerank_factor=%zu "
                "(float rows are %zu bytes)\n",
                data::PrecisionName(index.quantizer()->precision()),
                index.quantizer()->code_bytes(),
                index.quantizer()->rerank_factor(),
                index.base().dim() * sizeof(float));
  }
  return 0;
}

int CmdSearch(const Args& args) {
  const data::Metric metric = ParseMetric(args);
  data::Dataset base = LoadFvecsOrDie(args.Require("base"), "base", metric);
  const data::Dataset queries =
      LoadFvecsOrDie(args.Require("queries"), "queries", metric);

  std::string load_error;
  auto index = core::GannsIndex::Load(args.Require("index"), std::move(base),
                                      core::GannsIndex::Options(),
                                      &load_error);
  if (!index.has_value()) {
    std::fprintf(stderr, "failed to load index %s: %s\n",
                 args.Require("index").c_str(), load_error.c_str());
    return 1;
  }
  if (index->quantizer() != nullptr) {
    std::printf("index is quantized: precision=%s code_bytes=%zu "
                "rerank_factor=%zu\n",
                data::PrecisionName(index->quantizer()->precision()),
                index->quantizer()->code_bytes(),
                index->quantizer()->rerank_factor());
  }

  const std::size_t k = static_cast<std::size_t>(args.Int("k", 10));
  core::GannsParams params;
  params.l_n = static_cast<std::size_t>(args.Int("ln", 64));
  params.e = static_cast<std::size_t>(args.Int("e", 0));

  const auto trace_out = args.Get("trace-out");
  if (trace_out.has_value()) {
    obs::SetTracingEnabled(true);
    obs::SetMetricsEnabled(true);
  }

  const auto rows = index->Search(queries, k, params);
  std::printf("searched %zu queries (k=%zu, l_n=%zu, e=%zu) at %.0f "
              "simulated QPS\n",
              queries.size(), k, params.l_n, params.EffectiveE(),
              index->timing().last_search_qps);

  if (trace_out.has_value()) {
    if (!obs::TraceRecorder::Global().WriteJson(*trace_out)) {
      std::fprintf(stderr, "failed to write %s\n", trace_out->c_str());
      return 1;
    }
    std::printf("wrote %zu trace events to %s\n",
                obs::TraceRecorder::Global().size(), trace_out->c_str());
  }

  if (const auto out = args.Get("out"); out.has_value()) {
    std::vector<std::vector<std::int32_t>> ids(rows.size());
    for (std::size_t q = 0; q < rows.size(); ++q) {
      for (const auto& neighbor : rows[q]) {
        ids[q].push_back(static_cast<std::int32_t>(neighbor.id));
      }
    }
    if (!data::WriteIvecs(*out, ids)) {
      std::fprintf(stderr, "failed to write %s\n", out->c_str());
      return 1;
    }
    std::printf("wrote results to %s\n", out->c_str());
  } else {
    for (std::size_t q = 0; q < std::min<std::size_t>(rows.size(), 5); ++q) {
      std::printf("query %zu:", q);
      for (const auto& neighbor : rows[q]) {
        std::printf(" %u(%.3f)", neighbor.id, neighbor.dist);
      }
      std::printf("\n");
    }
  }
  return 0;
}

int CmdEval(const Args& args) {
  const data::Metric metric = ParseMetric(args);
  const data::Dataset base =
      LoadFvecsOrDie(args.Require("base"), "base", metric);
  const data::Dataset queries =
      LoadFvecsOrDie(args.Require("queries"), "queries", metric);
  const auto results = data::ReadIvecs(args.Require("results"));
  if (!results.has_value() || results->size() != queries.size()) {
    std::fprintf(stderr, "results file missing or row count mismatch\n");
    return 1;
  }

  const std::size_t k = static_cast<std::size_t>(args.Int("k", 10));
  const data::GroundTruth truth = data::BruteForceKnn(base, queries, k);
  std::vector<std::vector<VertexId>> ids(results->size());
  for (std::size_t q = 0; q < results->size(); ++q) {
    for (std::int32_t id : (*results)[q]) {
      ids[q].push_back(static_cast<VertexId>(id));
    }
  }
  std::printf("recall@%zu = %.4f over %zu queries\n", k,
              data::MeanRecall(ids, truth, k), queries.size());
  return 0;
}

int CmdProfile(const Args& args) {
  const data::DatasetSpec& spec =
      data::PaperDataset(args.Get("dataset").value_or("SIFT1M"));
  const std::size_t n = static_cast<std::size_t>(args.Int("n", 10000));
  const std::size_t num_queries =
      static_cast<std::size_t>(args.Int("queries", 100));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.Int("seed", 1));
  const std::size_t k = static_cast<std::size_t>(args.Int("k", 10));
  const std::string algo = args.Get("algo").value_or("ganns");

  if (!obs::TracingCompiledIn()) {
    std::fprintf(stderr,
                 "note: built with GANNS_TRACING=OFF; trace and metrics "
                 "output will be empty\n");
  }
  obs::SetTracingEnabled(true);
  obs::SetMetricsEnabled(true);

  const data::Dataset base = data::GenerateBase(spec, n, seed);
  const data::Dataset queries =
      data::GenerateQueries(spec, num_queries, n, seed);

  gpusim::Device device;
  core::GpuBuildParams build;
  build.num_groups = static_cast<int>(args.Int("groups", 64));
  const core::GpuBuildResult built =
      core::BuildNswGGraphCon(device, base, build);
  std::printf("built NSW graph over %zu points (%s, dim=%zu) in %.4f "
              "simulated s\n",
              n, spec.name.c_str(), base.dim(), built.sim_seconds);

  const graph::GraphDiagnostics diag = graph::Diagnose(built.graph, 0);
  graph::PublishDiagnostics(diag, "graph.nsw");
  std::printf("graph: mean_deg=%.2f sinks=%zu reachable=%.4f\n",
              diag.mean_out_degree, diag.sinks, diag.reachable_fraction);

  const data::GroundTruth truth = data::BruteForceKnn(base, queries, k);

  graph::BatchSearchResult batch;
  if (algo == "song") {
    song::SongParams params;
    params.k = k;
    params.queue_size = static_cast<std::size_t>(args.Int("queue", 64));
    std::vector<song::SongQueryProfile> profiles;
    batch = song::SongSearchBatch(device, built.graph, base, queries, params,
                                  32, 0, &profiles);
    double total = 0;
    std::array<double, song::kNumSongStages> stage{};
    std::uint64_t hops = 0, dists = 0;
    for (const song::SongQueryProfile& p : profiles) {
      hops += p.hops;
      dists += p.distance_computations;
      for (int i = 0; i < song::kNumSongStages; ++i) {
        stage[i] += p.stage_cycles[i];
        total += p.stage_cycles[i];
      }
    }
    std::printf("SONG: %zu queries, mean hops=%.1f, mean dist evals=%.1f\n",
                queries.size(),
                static_cast<double>(hops) / static_cast<double>(queries.size()),
                static_cast<double>(dists) /
                    static_cast<double>(queries.size()));
    std::printf("stages:");
    for (int i = 0; i < song::kNumSongStages; ++i) {
      std::printf(" %s=%.1f%%", song::SongStageName(i),
                  total > 0 ? 100 * stage[i] / total : 0.0);
    }
    std::printf("\n");
  } else if (algo == "ganns") {
    core::GannsParams params;
    params.k = k;
    params.l_n = static_cast<std::size_t>(args.Int("ln", 64));
    params.e = static_cast<std::size_t>(args.Int("e", 0));
    std::vector<core::GannsQueryProfile> profiles;
    batch = core::GannsSearchBatch(device, built.graph, base, queries, params,
                                   32, 0, &profiles);
    double total = 0;
    std::array<double, core::kNumGannsPhases> phase{};
    std::uint64_t hops = 0, dists = 0, redundant = 0;
    for (const core::GannsQueryProfile& p : profiles) {
      hops += p.hops;
      dists += p.distance_computations;
      redundant += p.redundant_distances;
      for (int i = 0; i < core::kNumGannsPhases; ++i) {
        phase[i] += p.phase_cycles[i];
        total += p.phase_cycles[i];
      }
    }
    std::printf("GANNS: %zu queries, mean hops=%.1f, mean dist evals=%.1f "
                "(%.1f redundant)\n",
                queries.size(),
                static_cast<double>(hops) / static_cast<double>(queries.size()),
                static_cast<double>(dists) /
                    static_cast<double>(queries.size()),
                static_cast<double>(redundant) /
                    static_cast<double>(queries.size()));
    std::printf("phases:");
    for (int i = 0; i < core::kNumGannsPhases; ++i) {
      std::printf(" %s=%.1f%%", core::GannsPhaseName(i),
                  total > 0 ? 100 * phase[i] / total : 0.0);
    }
    std::printf("\n");
  } else {
    std::fprintf(stderr, "unknown --algo '%s' (use ganns|song)\n",
                 algo.c_str());
    return 2;
  }

  std::printf("recall@%zu = %.4f, %.0f simulated QPS, SM load imbalance "
              "%.3f\n",
              k, data::MeanRecall(batch.results, truth, k), batch.qps,
              device.SmLoadImbalance());

  if (const auto out = args.Get("trace-out"); out.has_value()) {
    if (!obs::TraceRecorder::Global().WriteJson(*out)) {
      std::fprintf(stderr, "failed to write %s\n", out->c_str());
      return 1;
    }
    std::printf("wrote %zu trace events to %s\n",
                obs::TraceRecorder::Global().size(), out->c_str());
  }
  if (const auto out = args.Get("metrics-out"); out.has_value()) {
    obs::SnapshotRuntimeMetrics();
    if (!obs::MetricsRegistry::Global().WriteJson(*out)) {
      std::fprintf(stderr, "failed to write %s\n", out->c_str());
      return 1;
    }
    std::printf("wrote metrics to %s\n", out->c_str());
  }
  return 0;
}

core::SearchKernel ParseServeKernel(const Args& args) {
  const std::string name = args.Get("kernel").value_or("ganns");
  if (name == "ganns") return core::SearchKernel::kGanns;
  if (name == "song") return core::SearchKernel::kSong;
  if (name == "beam") return core::SearchKernel::kBeam;
  std::fprintf(stderr, "unknown kernel '%s' (use ganns|song|beam)\n",
               name.c_str());
  std::exit(2);
}

/// Latency percentile over a sorted sample (nearest-rank).
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

int CmdServeBench(const Args& args) {
  const data::DatasetSpec& spec =
      data::PaperDataset(args.Get("dataset").value_or("SIFT1M"));
  const std::size_t n = static_cast<std::size_t>(args.Int("n", 20000));
  const std::size_t num_queries =
      static_cast<std::size_t>(args.Int("queries", 500));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.Int("seed", 1));
  const std::size_t k = static_cast<std::size_t>(args.Int("k", 10));
  const std::size_t budget = static_cast<std::size_t>(args.Int("budget", 64));
  const std::size_t num_shards =
      static_cast<std::size_t>(args.Int("shards", 2));
  const long deadline_us = args.Int("deadline-us", 0);

  const data::Dataset base = data::GenerateBase(spec, n, seed);
  const data::Dataset queries =
      data::GenerateQueries(spec, num_queries, n, seed);

  serve::ShardBuildOptions build_options;
  build_options.num_groups = static_cast<int>(args.Int("groups", 64));
  build_options.construction_kernel = ParseServeKernel(args);
  if (build_options.construction_kernel == core::SearchKernel::kBeam) {
    build_options.construction_kernel = core::SearchKernel::kGanns;
  }
  if (args.Flag("hnsw")) build_options.kind = core::GraphKind::kHnsw;
  build_options.quantize = ParseQuantizeFlags(args);

  std::optional<serve::ShardedIndex> index;
  if (const auto load = args.Get("load"); load.has_value()) {
    std::string load_error;
    index = serve::ShardedIndex::LoadShards(*load, base, num_shards,
                                            build_options, &load_error);
    if (!index.has_value()) {
      std::fprintf(stderr, "failed to load shard files %s.shard0..%zu: %s\n",
                   load->c_str(), num_shards - 1, load_error.c_str());
      return 1;
    }
    std::printf("loaded %zu shard graphs from %s.shard*\n", num_shards,
                load->c_str());
  } else {
    index = serve::ShardedIndex::Build(base, num_shards, build_options);
    if (const auto save = args.Get("save"); save.has_value()) {
      if (!index->SaveShards(*save)) {
        std::fprintf(stderr, "failed to save shard files to %s.shard*\n",
                     save->c_str());
        return 1;
      }
      std::printf("saved %zu shard graphs to %s.shard*\n", num_shards,
                  save->c_str());
    }
  }
  if (index->resident_bytes_per_vector() < base.dim() * sizeof(float)) {
    std::printf("compressed serving: resident code bytes/vector=%zu "
                "(float rows are %zu bytes)\n",
                index->resident_bytes_per_vector(),
                base.dim() * sizeof(float));
  }

  serve::ServeOptions serve_options;
  serve_options.max_batch = static_cast<std::size_t>(args.Int("max-batch", 32));
  serve_options.batch_window_us = args.Int("window-us", 200);
  serve_options.queue_capacity =
      static_cast<std::size_t>(args.Int("queue-cap", 1024));
  serve_options.kernel = ParseServeKernel(args);
  if (const auto sample = args.Get("sample"); sample.has_value()) {
    serve_options.trace_sample = serve::ParseTraceSample(sample->c_str());
  }

  // Observability artifacts are opt-in per flag; requesting one turns the
  // matching subsystem on for this run (results are identical either way —
  // instrumentation never charges simulated cycles).
  const auto trace_out = args.Get("trace-out");
  const auto stats_out = args.Get("stats-out");
  const auto prom_out = args.Get("prom-out");
  const auto series_out = args.Get("series-out");
  const auto flight_out = args.Get("flight-out");
  const auto hardness_out = args.Get("hardness-out");
  if (trace_out.has_value()) obs::SetTracingEnabled(true);
  if (stats_out.has_value() || prom_out.has_value() ||
      series_out.has_value()) {
    obs::SetMetricsEnabled(true);
  }
  if (flight_out.has_value() || hardness_out.has_value()) {
    serve::FlightRecorderOptions flight_options;
    flight_options.deadline_fraction = args.Double("slo-fraction", 0.8);
    flight_options.request_capacity =
        static_cast<std::size_t>(args.Int("flight-ring", 4096));
    if (deadline_us > 0) {
      flight_options.default_deadline_us =
          static_cast<std::uint64_t>(deadline_us);
    }
    serve::FlightRecorder::Global().Configure(flight_options);
    serve::FlightRecorder::Global().SetEnabled(true);
  }
  std::optional<obs::TimeSeriesCollector> series;
  if (series_out.has_value()) {
    obs::TimeSeriesOptions series_options;
    series_options.interval_ms = args.Int("series-interval-ms", 100);
    if (deadline_us > 0) {
      series_options.slo_deadline_us =
          static_cast<std::uint64_t>(deadline_us);
    }
    series.emplace(series_options);
    series->Start();
  }

  serve::ServeEngine engine(*index, serve_options);
  engine.Start();

  const auto bench_start = serve::ServeClock::now();
  std::vector<std::future<serve::QueryResponse>> futures;
  futures.reserve(num_queries);
  for (std::size_t q = 0; q < num_queries; ++q) {
    serve::QueryRequest request;
    request.id = q;
    const auto point = queries.Point(static_cast<VertexId>(q));
    request.query.assign(point.begin(), point.end());
    request.k = k;
    request.budget = budget;
    if (deadline_us > 0) {
      request.deadline = serve::DeadlineAfterMicros(deadline_us);
    }
    futures.push_back(engine.Submit(std::move(request)));
  }

  std::vector<std::vector<VertexId>> ids(num_queries);
  std::vector<double> latencies;
  latencies.reserve(num_queries);
  for (std::size_t q = 0; q < num_queries; ++q) {
    serve::QueryResponse response = futures[q].get();
    if (response.status != serve::StatusCode::kOk) continue;
    latencies.push_back(response.latency_us);
    for (const auto& neighbor : response.neighbors) {
      ids[response.id].push_back(neighbor.id);
    }
  }
  const double wall_seconds =
      std::chrono::duration<double>(serve::ServeClock::now() - bench_start)
          .count();
  engine.Shutdown();
  if (series.has_value()) {
    // Stop the sampler, then cut one final window so short runs (shorter
    // than one interval) still export a non-empty ring.
    series->Stop();
    series->Tick();
  }

  const serve::ServeCounters counters = engine.counters();
  const double sim_seconds = engine.total_sim_seconds();
  const data::GroundTruth truth = data::BruteForceKnn(base, queries, k);
  const double recall = data::MeanRecall(ids, truth, k);
  std::sort(latencies.begin(), latencies.end());

  std::string json = "{\n";
  char line[256];
  std::snprintf(line, sizeof(line), "  \"shards\": %zu,\n", num_shards);
  json += line;
  std::snprintf(line, sizeof(line), "  \"queries\": %zu,\n", num_queries);
  json += line;
  std::snprintf(line, sizeof(line),
                "  \"served\": %llu, \"rejected\": %llu, \"expired\": %llu,\n",
                static_cast<unsigned long long>(counters.served),
                static_cast<unsigned long long>(counters.rejected),
                static_cast<unsigned long long>(counters.expired));
  json += line;
  std::snprintf(line, sizeof(line), "  \"recall\": %.4f,\n", recall);
  json += line;
  std::snprintf(line, sizeof(line),
                "  \"sim_qps\": %.0f, \"wall_qps\": %.0f,\n",
                sim_seconds > 0 ? static_cast<double>(counters.served) /
                                      sim_seconds
                                : 0.0,
                wall_seconds > 0 ? static_cast<double>(counters.served) /
                                       wall_seconds
                                 : 0.0);
  json += line;
  std::snprintf(line, sizeof(line),
                "  \"latency_us\": {\"p50\": %.1f, \"p95\": %.1f, "
                "\"p99\": %.1f}\n}\n",
                Percentile(latencies, 0.50), Percentile(latencies, 0.95),
                Percentile(latencies, 0.99));
  json += line;

  if (const auto out = args.Get("json"); out.has_value()) {
    std::FILE* file = std::fopen(out->c_str(), "w");
    if (file == nullptr ||
        std::fwrite(json.data(), 1, json.size(), file) != json.size()) {
      if (file != nullptr) std::fclose(file);
      std::fprintf(stderr, "failed to write %s\n", out->c_str());
      return 1;
    }
    std::fclose(file);
    std::printf("wrote %s\n", out->c_str());
  }
  std::fputs(json.c_str(), stdout);

  if (trace_out.has_value()) {
    if (!obs::TraceRecorder::Global().WriteJson(*trace_out)) {
      std::fprintf(stderr, "failed to write %s\n", trace_out->c_str());
      return 1;
    }
    std::printf("wrote %zu trace events to %s\n",
                obs::TraceRecorder::Global().size(), trace_out->c_str());
  }
  if (stats_out.has_value()) {
    if (!obs::MetricsRegistry::Global().WriteJson(*stats_out)) {
      std::fprintf(stderr, "failed to write %s\n", stats_out->c_str());
      return 1;
    }
    std::printf("wrote serving stats to %s\n", stats_out->c_str());
  }
  if (prom_out.has_value()) {
    if (!obs::MetricsRegistry::Global().WritePrometheus(*prom_out)) {
      std::fprintf(stderr, "failed to write %s\n", prom_out->c_str());
      return 1;
    }
    std::printf("wrote Prometheus metrics to %s\n", prom_out->c_str());
  }
  if (series.has_value()) {
    if (!series->WriteJsonl(*series_out)) {
      std::fprintf(stderr, "failed to write %s\n", series_out->c_str());
      return 1;
    }
    std::printf("wrote %zu time-series windows to %s (%llu overwritten)\n",
                series->Windows().size(), series_out->c_str(),
                static_cast<unsigned long long>(series->overwritten()));
  }
  if (flight_out.has_value()) {
    serve::FlightRecorder& recorder = serve::FlightRecorder::Global();
    if (!recorder.WriteJson(*flight_out)) {
      std::fprintf(stderr, "failed to write %s\n", flight_out->c_str());
      return 1;
    }
    const serve::FlightCounters flight_counters = recorder.counters();
    std::printf("wrote flight dump to %s (%llu recorded, %llu violators "
                "persisted)\n",
                flight_out->c_str(),
                static_cast<unsigned long long>(flight_counters.recorded),
                static_cast<unsigned long long>(flight_counters.persisted));
  }
  if (hardness_out.has_value()) {
    if (!serve::FlightRecorder::Global().WriteHardnessJsonl(*hardness_out)) {
      std::fprintf(stderr, "failed to write %s\n", hardness_out->c_str());
      return 1;
    }
    std::printf("wrote hardness exemplars to %s\n", hardness_out->c_str());
  }
  serve::FlightRecorder::Global().SetEnabled(false);
  // Overload must be able to fail the run: every artifact above is already
  // written, so CI gets the evidence *and* the non-zero exit.
  if (args.Flag("fail-on-reject") && counters.rejected > 0) {
    std::fprintf(stderr,
                 "serve-bench: %llu request(s) rejected by admission control "
                 "(--fail-on-reject)\n",
                 static_cast<unsigned long long>(counters.rejected));
    return 1;
  }
  return 0;
}

/// `ganns cluster-bench`: drives the simulated multi-node cluster. Builds a
/// sharded index, wraps it in a ClusterIndex (replica placement, message
/// aggregation, fault injection per flags), pushes the query stream through
/// in fixed-size batches, and reports recall + simulated QPS + failure
/// counters + per-node stats as deterministic JSON. The same batches are
/// replayed through single-node ShardedIndex::SearchBatch to report (and
/// with --verify-single-node, enforce) the bit-identity contract.
int CmdClusterBench(const Args& args) {
  const data::DatasetSpec& spec =
      data::PaperDataset(args.Get("dataset").value_or("SIFT1M"));
  const std::size_t n = static_cast<std::size_t>(args.Int("n", 20000));
  const std::size_t num_queries =
      static_cast<std::size_t>(args.Int("queries", 400));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.Int("seed", 1));
  const std::size_t k = static_cast<std::size_t>(args.Int("k", 10));
  const std::size_t budget = static_cast<std::size_t>(args.Int("budget", 256));
  const std::size_t num_shards =
      static_cast<std::size_t>(args.Int("shards", 4));
  const std::size_t batch_size =
      std::max<std::size_t>(1, static_cast<std::size_t>(args.Int("batch", 16)));

  const auto trace_out = args.Get("trace-out");
  const auto stats_out = args.Get("stats-out");
  const auto prom_out = args.Get("prom-out");
  // Federation artifacts switch the monitoring plane on, the way --trace-out
  // switches tracing on. --federation alone enables the plane without
  // writing anything (the report still shows scrape traffic).
  const auto federation_out = args.Get("federation-out");
  const auto fed_prom_out = args.Get("fed-prom-out");
  const auto alerts_out = args.Get("alerts-out");
  const bool plane_on = federation_out.has_value() ||
                        fed_prom_out.has_value() || alerts_out.has_value() ||
                        args.Flag("federation");
  if (trace_out.has_value()) obs::SetTracingEnabled(true);
  if (stats_out.has_value() || prom_out.has_value()) {
    obs::SetMetricsEnabled(true);
  }

  const data::Dataset base = data::GenerateBase(spec, n, seed);
  const data::Dataset queries =
      data::GenerateQueries(spec, num_queries, n, seed);

  serve::ShardBuildOptions build_options;
  build_options.num_groups = static_cast<int>(args.Int("groups", 64));
  build_options.construction_kernel = ParseServeKernel(args);
  if (build_options.construction_kernel == core::SearchKernel::kBeam) {
    build_options.construction_kernel = core::SearchKernel::kGanns;
  }
  serve::ShardedIndex index =
      serve::ShardedIndex::Build(base, num_shards, build_options);

  cluster::ClusterOptions cluster_options;
  cluster_options.num_nodes = static_cast<std::size_t>(args.Int("nodes", 3));
  cluster_options.replication =
      static_cast<std::size_t>(args.Int("replication", 2));
  if (const auto name = args.Get("selection"); name.has_value()) {
    const auto selection = cluster::ParseSelection(*name);
    if (!selection.has_value()) {
      std::fprintf(stderr, "unknown selection '%s' (use rr|lo|p2c)\n",
                   name->c_str());
      return 2;
    }
    cluster_options.selection = *selection;
  }
  cluster_options.max_attempts =
      static_cast<std::size_t>(args.Int("max-attempts", 3));
  cluster_options.timeout_us = args.Double("timeout-us", 1000.0);
  cluster_options.aggregator.max_bytes =
      static_cast<std::size_t>(args.Int("agg-bytes", 8192));
  cluster_options.aggregator.deadline_us =
      args.Double("agg-deadline-us", 100.0);
  cluster_options.seed = seed;
  cluster_options.faults.crash_node =
      static_cast<int>(args.Int("crash-node", -1));
  cluster_options.faults.crash_at_batch =
      static_cast<std::uint64_t>(args.Int("crash-at-batch", 1));
  cluster_options.faults.rejoin_after_batches =
      static_cast<int>(args.Int("rejoin-after", -1));
  cluster_options.faults.drop_rate = args.Double("drop-pct", 0.0) / 100.0;
  cluster_options.faults.delay_rate = args.Double("delay-pct", 0.0) / 100.0;
  cluster_options.faults.delay_us = args.Double("delay-us", 200.0);
  cluster_options.faults.seed =
      static_cast<std::uint64_t>(args.Int("fault-seed", 1));
  if (plane_on) {
    cluster_options.federation.enabled = true;
    // Simulated batches are O(100us), so the CLI defaults to a tighter
    // scrape cadence than the library's 5ms.
    cluster_options.federation.scrape_interval_us =
        static_cast<std::uint64_t>(args.Int("scrape-interval-us", 500));
    cluster_options.federation.slo_deadline_us =
        static_cast<std::uint64_t>(args.Int("slo-deadline-us", 0));
    if (const auto specs = args.Get("alert-rules"); specs.has_value()) {
      // Comma-separated "name:kind:..." specs replacing the default rule
      // set (see obs::ParseAlertRule for per-kind formats).
      std::string rest = *specs;
      while (!rest.empty()) {
        const std::size_t comma = rest.find(',');
        const std::string spec = rest.substr(0, comma);
        rest = comma == std::string::npos ? std::string()
                                          : rest.substr(comma + 1);
        if (spec.empty()) continue;
        const auto rule = obs::ParseAlertRule(spec);
        if (!rule.has_value()) {
          std::fprintf(stderr, "malformed alert rule '%s'\n", spec.c_str());
          return 2;
        }
        cluster_options.alert_rules.push_back(*rule);
      }
    }
  }

  cluster::ClusterIndex cluster_index(index, cluster_options);
  const core::SearchKernel kernel = ParseServeKernel(args);

  std::vector<serve::RoutedQuery> routed(num_queries);
  std::vector<std::vector<float>> query_storage(num_queries);
  for (std::size_t q = 0; q < num_queries; ++q) {
    const auto point = queries.Point(static_cast<VertexId>(q));
    query_storage[q].assign(point.begin(), point.end());
    routed[q].query = query_storage[q];
    routed[q].k = k;
    routed[q].budget = budget;
  }
  // --sample N: every Nth query becomes a sampled request — its sub-queries
  // emit child spans on the owning nodes' tracks, stitched to a
  // serve.request root by Perfetto flow events. Requires --trace-out.
  if (const long sample = args.Int("sample", 0);
      sample > 0 && trace_out.has_value()) {
    for (std::size_t q = 0; q < num_queries;
         q += static_cast<std::size_t>(sample)) {
      routed[q].trace.sampled = true;
      routed[q].trace.trace_id = static_cast<std::uint64_t>(q) + 1;
    }
  }

  std::vector<std::vector<graph::Neighbor>> rows(num_queries);
  for (std::size_t q = 0; q < num_queries; q += batch_size) {
    const std::size_t count = std::min(batch_size, num_queries - q);
    auto batch_rows = cluster_index.SearchBatch(
        std::span<const serve::RoutedQuery>(routed).subspan(q, count), kernel);
    for (std::size_t i = 0; i < count; ++i) {
      rows[q + i] = std::move(batch_rows[i]);
    }
  }
  cluster_index.Shutdown();

  // Replay through single-node serving: the determinism contract says this
  // matches bit-for-bit whenever the cluster lost no candidates.
  bool identical = true;
  for (std::size_t q = 0; q < num_queries && identical; q += batch_size) {
    const std::size_t count = std::min(batch_size, num_queries - q);
    const auto reference = index.SearchBatch(
        std::span<const serve::RoutedQuery>(routed).subspan(q, count), kernel);
    for (std::size_t i = 0; i < count; ++i) {
      if (rows[q + i] != reference[i]) identical = false;
    }
  }

  std::vector<std::vector<VertexId>> ids(num_queries);
  for (std::size_t q = 0; q < num_queries; ++q) {
    for (const auto& neighbor : rows[q]) ids[q].push_back(neighbor.id);
  }
  const data::GroundTruth truth = data::BruteForceKnn(base, queries, k);
  const double recall = data::MeanRecall(ids, truth, k);
  const cluster::ClusterCounters& counters = cluster_index.counters();
  const double sim_seconds = cluster_index.total_sim_seconds();

  std::string json = "{\n";
  char line[256];
  std::snprintf(line, sizeof(line),
                "  \"shards\": %zu, \"nodes\": %zu, \"replication\": %zu, "
                "\"selection\": \"%s\",\n",
                num_shards, cluster_options.num_nodes,
                cluster_options.replication,
                std::string(cluster::SelectionName(cluster_options.selection))
                    .c_str());
  json += line;
  std::snprintf(line, sizeof(line),
                "  \"queries\": %zu, \"batch\": %zu,\n", num_queries,
                batch_size);
  json += line;
  std::snprintf(line, sizeof(line),
                "  \"served\": %llu, \"lost\": %llu,\n",
                static_cast<unsigned long long>(counters.served_queries),
                static_cast<unsigned long long>(counters.lost_sub_queries));
  json += line;
  std::snprintf(line, sizeof(line),
                "  \"failovers\": %llu, \"timeouts\": %llu,\n",
                static_cast<unsigned long long>(counters.failovers),
                static_cast<unsigned long long>(counters.timeouts));
  json += line;
  std::snprintf(line, sizeof(line), "  \"recall\": %.4f,\n", recall);
  json += line;
  std::snprintf(line, sizeof(line),
                "  \"sim_qps\": %.0f, \"recovery_sim_seconds\": %.6f,\n",
                sim_seconds > 0
                    ? static_cast<double>(counters.served_queries) / sim_seconds
                    : 0.0,
                cluster_index.recovery_sim_seconds());
  json += line;
  std::snprintf(line, sizeof(line), "  \"identical_to_single_node\": %d,\n",
                identical ? 1 : 0);
  json += line;
  if (plane_on && cluster_index.federation() != nullptr) {
    const obs::MetricsFederation& federation = *cluster_index.federation();
    std::snprintf(line, sizeof(line),
                  "  \"federation\": {\"scrapes\": %llu, \"windows\": %zu, "
                  "\"scrape_bytes\": %llu, \"monitoring_sim_seconds\": %.6f, "
                  "\"alert_events\": %zu},\n",
                  static_cast<unsigned long long>(federation.scrapes()),
                  federation.windows().size(),
                  static_cast<unsigned long long>(federation.scrape_bytes()),
                  cluster_index.monitoring_sim_seconds(),
                  cluster_index.alerts() != nullptr
                      ? cluster_index.alerts()->events().size()
                      : 0);
    json += line;
  }
  json += "  \"counters\": " + cluster_index.CountersJson() + ",\n";
  json += "  \"aggregator\": " + cluster_index.AggregatorJson() + ",\n";
  json += "  \"node_stats\": " + cluster_index.NodesJson() + "\n}\n";

  if (const auto out = args.Get("json"); out.has_value()) {
    std::FILE* file = std::fopen(out->c_str(), "w");
    if (file == nullptr ||
        std::fwrite(json.data(), 1, json.size(), file) != json.size()) {
      if (file != nullptr) std::fclose(file);
      std::fprintf(stderr, "failed to write %s\n", out->c_str());
      return 1;
    }
    std::fclose(file);
    std::printf("wrote %s\n", out->c_str());
  }
  std::fputs(json.c_str(), stdout);

  if (trace_out.has_value()) {
    if (!obs::TraceRecorder::Global().WriteJson(*trace_out)) {
      std::fprintf(stderr, "failed to write %s\n", trace_out->c_str());
      return 1;
    }
    std::printf("wrote %zu trace events to %s\n",
                obs::TraceRecorder::Global().size(), trace_out->c_str());
  }
  if (stats_out.has_value()) {
    if (!obs::MetricsRegistry::Global().WriteJson(*stats_out)) {
      std::fprintf(stderr, "failed to write %s\n", stats_out->c_str());
      return 1;
    }
    std::printf("wrote cluster stats to %s\n", stats_out->c_str());
  }
  if (prom_out.has_value()) {
    if (!obs::MetricsRegistry::Global().WritePrometheus(*prom_out)) {
      std::fprintf(stderr, "failed to write %s\n", prom_out->c_str());
      return 1;
    }
    std::printf("wrote Prometheus metrics to %s\n", prom_out->c_str());
  }
  if (federation_out.has_value()) {
    if (cluster_index.federation() == nullptr ||
        !cluster_index.federation()->WriteJsonl(*federation_out)) {
      std::fprintf(stderr, "failed to write %s\n", federation_out->c_str());
      return 1;
    }
    std::printf("wrote %zu federated windows to %s\n",
                cluster_index.federation()->windows().size(),
                federation_out->c_str());
  }
  if (fed_prom_out.has_value()) {
    if (cluster_index.federation() == nullptr ||
        !cluster_index.federation()->WritePrometheus(*fed_prom_out)) {
      std::fprintf(stderr, "failed to write %s\n", fed_prom_out->c_str());
      return 1;
    }
    std::printf("wrote federated Prometheus metrics to %s\n",
                fed_prom_out->c_str());
  }
  if (alerts_out.has_value()) {
    if (cluster_index.alerts() == nullptr ||
        !cluster_index.alerts()->WriteJsonl(*alerts_out)) {
      std::fprintf(stderr, "failed to write %s\n", alerts_out->c_str());
      return 1;
    }
    std::printf("wrote %zu alert events to %s\n",
                cluster_index.alerts()->events().size(), alerts_out->c_str());
  }

  if (args.Flag("verify-single-node") && !identical) {
    std::fprintf(stderr,
                 "cluster-bench: cluster results diverged from single-node "
                 "serving (lost=%llu)\n",
                 static_cast<unsigned long long>(counters.lost_sub_queries));
    return 1;
  }
  return 0;
}

/// `ganns update`: online-update exerciser. Builds a sharded NSW index over
/// a synthetic corpus, applies a deterministic alternating insert/remove
/// workload (removes pick live victims by a fixed stride, inserts draw from
/// a second synthetic pool), then searches and scores recall against a
/// brute-force oracle over the surviving points — so the number reported is
/// the recall of the *mutated* graph, not the build-time one.
int CmdUpdate(const Args& args) {
  const data::DatasetSpec& spec =
      data::PaperDataset(args.Get("dataset").value_or("SIFT1M"));
  const std::size_t n = static_cast<std::size_t>(args.Int("n", 20000));
  const std::size_t num_queries =
      static_cast<std::size_t>(args.Int("queries", 200));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.Int("seed", 1));
  const std::size_t k = static_cast<std::size_t>(args.Int("k", 10));
  const std::size_t budget = static_cast<std::size_t>(args.Int("budget", 256));
  const std::size_t num_shards =
      static_cast<std::size_t>(args.Int("shards", 2));
  const std::size_t num_inserts =
      static_cast<std::size_t>(args.Int("inserts", static_cast<long>(n) / 10));
  const std::size_t num_removes =
      static_cast<std::size_t>(args.Int("removes", static_cast<long>(n) / 10));

  serve::ShardBuildOptions build_options;
  build_options.num_groups = static_cast<int>(args.Int("groups", 64));
  build_options.construction_kernel = ParseServeKernel(args);
  if (build_options.construction_kernel == core::SearchKernel::kBeam) {
    build_options.construction_kernel = core::SearchKernel::kGanns;
  }
  build_options.update.ef_insert =
      static_cast<std::size_t>(args.Int("ef-insert", 64));
  build_options.update.compact_threshold =
      static_cast<double>(args.Int("compact-threshold-pct", 25)) / 100.0;
  build_options.update.host_updates = args.Flag("host");
  build_options.update.auto_compact = !args.Flag("no-auto-compact");

  const auto trace_out = args.Get("trace-out");
  const auto stats_out = args.Get("stats-out");
  const auto prom_out = args.Get("prom-out");
  if (trace_out.has_value()) obs::SetTracingEnabled(true);
  if (stats_out.has_value() || prom_out.has_value()) {
    obs::SetMetricsEnabled(true);
  }

  const data::Dataset base = data::GenerateBase(spec, n, seed);
  const data::Dataset queries =
      data::GenerateQueries(spec, num_queries, n, seed);
  const data::Dataset pool = data::GenerateBase(spec, num_inserts, seed + 17);

  serve::ShardedIndex index =
      serve::ShardedIndex::Build(base, num_shards, build_options);
  std::printf("built %zu NSW shard(s) over %zu points (%s, dim=%zu)\n",
              num_shards, n, spec.name.c_str(), base.dim());

  // The survivor set: global id -> vector, kept in id order so the oracle
  // dataset below is deterministic.
  std::map<VertexId, std::vector<float>> live;
  for (VertexId v = 0; v < n; ++v) {
    const auto point = base.Point(v);
    live.emplace(v, std::vector<float>(point.begin(), point.end()));
  }

  // Alternating workload, removes first (odd steps insert). Victims walk
  // the live set with a fixed stride so deletions spread across shards and
  // hit both initial and freshly inserted points.
  std::size_t inserts_done = 0, removes_done = 0;
  std::size_t failed_inserts = 0;
  std::vector<double> op_latencies;
  op_latencies.reserve(num_inserts + num_removes);
  const auto workload_start = std::chrono::steady_clock::now();
  const std::size_t total_ops = num_inserts + num_removes;
  for (std::size_t i = 0; i < total_ops; ++i) {
    const bool want_remove =
        (i % 2 == 0) ? removes_done < num_removes : inserts_done >= num_inserts;
    const auto op_start = std::chrono::steady_clock::now();
    if (want_remove && removes_done < num_removes && !live.empty()) {
      auto victim = live.begin();
      std::advance(victim, (i * 131) % live.size());
      const VertexId gid = victim->first;
      if (!index.Remove(gid)) {
        std::fprintf(stderr, "remove of live id %u failed\n", gid);
        return 1;
      }
      live.erase(victim);
      ++removes_done;
    } else if (inserts_done < num_inserts) {
      const auto point = pool.Point(static_cast<VertexId>(inserts_done));
      const auto gid = index.Insert(point);
      ++inserts_done;
      if (gid.has_value()) {
        live.emplace(*gid, std::vector<float>(point.begin(), point.end()));
      } else {
        ++failed_inserts;  // capacity_slack exhausted: reported, not fatal
      }
    } else {
      continue;
    }
    op_latencies.push_back(std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - op_start)
                               .count());
  }
  const double workload_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    workload_start)
          .count();

  // --compact forces a final synchronous compaction of every shard, making
  // the compaction count (and the searched graph) independent of background
  // task timing.
  if (args.Flag("compact")) {
    for (std::size_t s = 0; s < index.num_shards(); ++s) index.Compact(s);
  }

  if (const auto save = args.Get("save"); save.has_value()) {
    if (!index.SaveShards(*save)) {
      std::fprintf(stderr, "failed to save shard files to %s.shard*\n",
                   save->c_str());
      return 1;
    }
    std::printf("saved %zu mutated shard(s) to %s.shard*\n", num_shards,
                save->c_str());
  }

  // Brute-force oracle over the survivors. Search results come back as
  // global ids; translate them to survivor-dataset rows before scoring.
  data::Dataset survivors("survivors", base.dim(), base.metric());
  survivors.Reserve(live.size());
  std::map<VertexId, VertexId> gid_to_row;
  for (const auto& [gid, point] : live) {
    gid_to_row.emplace(gid, static_cast<VertexId>(survivors.size()));
    survivors.Append(point);
  }
  const data::GroundTruth truth = data::BruteForceKnn(survivors, queries, k);

  std::vector<serve::RoutedQuery> routed(num_queries);
  for (std::size_t q = 0; q < num_queries; ++q) {
    routed[q].query = queries.Point(static_cast<VertexId>(q));
    routed[q].k = k;
    routed[q].budget = budget;
  }
  const auto rows = index.SearchBatch(routed, ParseServeKernel(args));
  std::vector<std::vector<VertexId>> ids(num_queries);
  for (std::size_t q = 0; q < num_queries; ++q) {
    for (const auto& neighbor : rows[q]) {
      const auto it = gid_to_row.find(neighbor.id);
      ids[q].push_back(it != gid_to_row.end()
                           ? it->second
                           : static_cast<VertexId>(survivors.size()));
    }
  }
  const double recall = data::MeanRecall(ids, truth, k);

  double max_tombstones = 0;
  for (std::size_t s = 0; s < index.num_shards(); ++s) {
    max_tombstones = std::max(max_tombstones, index.TombstoneFraction(s));
  }
  const double sim_seconds = index.update_sim_seconds();
  const std::size_t applied = inserts_done + removes_done - failed_inserts;
  std::sort(op_latencies.begin(), op_latencies.end());

  std::string json = "{\n";
  char line[256];
  std::snprintf(line, sizeof(line),
                "  \"shards\": %zu, \"initial\": %zu, \"live\": %zu,\n",
                num_shards, n, index.size());
  json += line;
  std::snprintf(line, sizeof(line),
                "  \"inserts\": %llu, \"removes\": %llu, "
                "\"failed_inserts\": %zu,\n",
                static_cast<unsigned long long>(index.inserts()),
                static_cast<unsigned long long>(index.removes()),
                failed_inserts);
  json += line;
  std::snprintf(line, sizeof(line),
                "  \"compactions\": %llu, \"tombstone_fraction\": %.4f,\n",
                static_cast<unsigned long long>(index.compactions()),
                max_tombstones);
  json += line;
  std::snprintf(line, sizeof(line), "  \"update_recall\": %.4f,\n", recall);
  json += line;
  std::snprintf(line, sizeof(line),
                "  \"update_sim_seconds\": %.6f, \"sim_ups\": %.0f, "
                "\"wall_ups\": %.0f,\n",
                sim_seconds,
                sim_seconds > 0 ? static_cast<double>(applied) / sim_seconds
                                : 0.0,
                workload_wall_seconds > 0
                    ? static_cast<double>(applied) / workload_wall_seconds
                    : 0.0);
  json += line;
  std::snprintf(line, sizeof(line),
                "  \"update_latency_us\": {\"p50\": %.1f, \"p95\": %.1f, "
                "\"p99\": %.1f}\n}\n",
                Percentile(op_latencies, 0.50), Percentile(op_latencies, 0.95),
                Percentile(op_latencies, 0.99));
  json += line;

  if (const auto out = args.Get("json"); out.has_value()) {
    std::FILE* file = std::fopen(out->c_str(), "w");
    if (file == nullptr ||
        std::fwrite(json.data(), 1, json.size(), file) != json.size()) {
      if (file != nullptr) std::fclose(file);
      std::fprintf(stderr, "failed to write %s\n", out->c_str());
      return 1;
    }
    std::fclose(file);
    std::printf("wrote %s\n", out->c_str());
  }
  std::fputs(json.c_str(), stdout);

  if (trace_out.has_value()) {
    if (!obs::TraceRecorder::Global().WriteJson(*trace_out)) {
      std::fprintf(stderr, "failed to write %s\n", trace_out->c_str());
      return 1;
    }
    std::printf("wrote %zu trace events to %s\n",
                obs::TraceRecorder::Global().size(), trace_out->c_str());
  }
  if (stats_out.has_value()) {
    if (!obs::MetricsRegistry::Global().WriteJson(*stats_out)) {
      std::fprintf(stderr, "failed to write %s\n", stats_out->c_str());
      return 1;
    }
    std::printf("wrote update stats to %s\n", stats_out->c_str());
  }
  if (prom_out.has_value()) {
    if (!obs::MetricsRegistry::Global().WritePrometheus(*prom_out)) {
      std::fprintf(stderr, "failed to write %s\n", prom_out->c_str());
      return 1;
    }
    std::printf("wrote Prometheus metrics to %s\n", prom_out->c_str());
  }
  return 0;
}

/// Walks a dotted path ("counters.cluster.served_queries" or
/// "results.0.sim_qps") through a JSON document. Object keys may themselves
/// contain dots (metric names do), so at each step the longest key prefix of
/// the remaining path that exists in the current object wins. Array segments
/// must be numeric indices.
const tools::Json* ResolveDottedPath(const tools::Json& root,
                                     const std::string& dotted) {
  const tools::Json* node = &root;
  std::size_t pos = 0;
  while (pos < dotted.size()) {
    if (node->Is(tools::Json::Kind::kObject)) {
      // Longest-prefix match so "hdr.cluster.batch_us.p99" finds the
      // "cluster.batch_us" key in one hop.
      const tools::Json* next = nullptr;
      std::size_t next_pos = 0;
      for (std::size_t end = dotted.size();; ) {
        const std::string key = dotted.substr(pos, end - pos);
        if (const tools::Json* child = node->Get(key); child != nullptr) {
          next = child;
          next_pos = end < dotted.size() ? end + 1 : dotted.size();
          break;
        }
        const std::size_t dot = dotted.rfind('.', end - 1);
        if (dot == std::string::npos || dot <= pos) break;
        end = dot;
      }
      if (next == nullptr) return nullptr;
      node = next;
      pos = next_pos;
    } else if (node->Is(tools::Json::Kind::kArray)) {
      std::size_t end = dotted.find('.', pos);
      if (end == std::string::npos) end = dotted.size();
      const std::string segment = dotted.substr(pos, end - pos);
      if (segment.empty() ||
          segment.find_first_not_of("0123456789") != std::string::npos) {
        return nullptr;
      }
      const std::size_t index = std::strtoull(segment.c_str(), nullptr, 10);
      if (index >= node->array.size()) return nullptr;
      node = node->array[index].get();
      pos = end < dotted.size() ? end + 1 : dotted.size();
    } else {
      return nullptr;
    }
  }
  return node;
}

/// Prints one resolved --path node: leaf values print scriptably (one value,
/// one line); containers list their children so the next path segment is
/// discoverable.
int PrintStatPath(const tools::Json& node, const std::string& dotted) {
  switch (node.kind) {
    case tools::Json::Kind::kNumber:
      if (node.number == static_cast<long long>(node.number)) {
        std::printf("%lld\n", static_cast<long long>(node.number));
      } else {
        std::printf("%.6f\n", node.number);
      }
      return 0;
    case tools::Json::Kind::kString:
      std::printf("%s\n", node.string.c_str());
      return 0;
    case tools::Json::Kind::kBool:
      std::printf("%s\n", node.boolean ? "true" : "false");
      return 0;
    case tools::Json::Kind::kNull:
      std::printf("null\n");
      return 0;
    case tools::Json::Kind::kArray:
      std::printf("%s: array of %zu (index with .N)\n", dotted.c_str(),
                  node.array.size());
      return 0;
    case tools::Json::Kind::kObject: {
      std::printf("%s: object with %zu keys:", dotted.c_str(),
                  node.object.size());
      for (const auto& [key, value] : node.object) {
        std::printf(" %s", key.c_str());
      }
      std::printf("\n");
      return 0;
    }
  }
  return 1;
}

/// Summarizes one cluster report row (the `ganns cluster-bench --json`
/// object or one BENCH_cluster.json results row) for `ganns stat`.
void PrintClusterRow(const tools::Json& row) {
  const auto num = [&](const char* key) {
    const tools::Json* value = row.Get(key);
    return value != nullptr && value->Is(tools::Json::Kind::kNumber)
               ? value->number
               : 0.0;
  };
  std::printf("cluster: nodes=%.0f replication=%.0f served=%.0f lost=%.0f "
              "failovers=%.0f timeouts=%.0f recall=%.4f sim_qps=%.0f\n",
              num("nodes"), num("replication"), num("served"), num("lost"),
              num("failovers"), num("timeouts"), num("recall"),
              num("sim_qps"));
  const tools::Json* node_stats = row.Get("node_stats");
  if (node_stats == nullptr || !node_stats->Is(tools::Json::Kind::kArray)) {
    return;
  }
  for (const tools::JsonPtr& node : node_stats->array) {
    if (!node->Is(tools::Json::Kind::kObject)) continue;
    const auto field = [&](const char* key) {
      const tools::Json* value = node->Get(key);
      return value != nullptr && value->Is(tools::Json::Kind::kNumber)
                 ? value->number
                 : 0.0;
    };
    const tools::Json* state = node->Get("state");
    std::printf("  node %.0f [%s]: served=%.0f sub_batches=%.0f "
                "timeouts=%.0f transfer_bytes=%.0f\n",
                field("id"),
                state != nullptr && state->Is(tools::Json::Kind::kString)
                    ? state->string.c_str()
                    : "?",
                field("served_queries"), field("served_sub_batches"),
                field("timeouts"), field("transfer_bytes"));
  }
}

/// One `ganns stat` pass over the stats file (the --watch loop re-runs it).
int StatOnce(const std::string& path, const Args& args) {
  std::string error;
  const tools::JsonPtr root = tools::ParseJsonFile(path, &error);
  if (root == nullptr) {
    std::fprintf(stderr, "JSON parse error: %s\n", error.c_str());
    return 1;
  }
  // --path works on any JSON artifact: registry exports, cluster-bench
  // reports, BENCH_cluster.json sweeps.
  if (const auto dotted = args.Get("path"); dotted.has_value()) {
    const tools::Json* node = ResolveDottedPath(*root, *dotted);
    if (node == nullptr) {
      std::fprintf(stderr, "path '%s' not found in %s\n", dotted->c_str(),
                   path.c_str());
      return 1;
    }
    return PrintStatPath(*node, *dotted);
  }
  const tools::Json* hdr = root->Get("hdr");
  if (hdr == nullptr || !hdr->Is(tools::Json::Kind::kObject)) {
    // Not a registry export — recognize the cluster report shapes before
    // giving up: a single report (top-level node_stats) or the bench sweep
    // (results rows each carrying node_stats).
    if (root->Get("node_stats") != nullptr) {
      PrintClusterRow(*root);
      return 0;
    }
    const tools::Json* results = root->Get("results");
    if (results != nullptr && results->Is(tools::Json::Kind::kArray) &&
        !results->array.empty() &&
        results->array.front()->Get("node_stats") != nullptr) {
      for (const tools::JsonPtr& row : results->array) {
        PrintClusterRow(*row);
      }
      return 0;
    }
    std::fprintf(stderr, "%s has no hdr section (write it with "
                 "`ganns serve-bench --stats-out`; for other JSON artifacts "
                 "use --path a.b.c)\n",
                 path.c_str());
    return 1;
  }

  const auto metric = args.Get("metric");
  const auto quantile = args.Get("quantile");
  if (quantile.has_value() && !metric.has_value()) {
    std::fprintf(stderr, "--quantile requires --metric\n");
    return 2;
  }

  for (const auto& [name, entry] : hdr->object) {
    if (metric.has_value() && name != *metric) continue;
    if (!entry->Is(tools::Json::Kind::kObject)) continue;
    if (quantile.has_value()) {
      const tools::Json* value = entry->Get(*quantile);
      if (value == nullptr || !value->Is(tools::Json::Kind::kNumber)) {
        std::fprintf(stderr, "metric %s has no field '%s'\n", name.c_str(),
                     quantile->c_str());
        return 1;
      }
      std::printf("%.0f\n", value->number);
      return 0;
    }
    const auto num = [&](const char* key) {
      const tools::Json* value = entry->Get(key);
      return value != nullptr && value->Is(tools::Json::Kind::kNumber)
                 ? value->number
                 : 0.0;
    };
    std::printf("%s: count=%.0f mean=%.1f min=%.0f p50=%.0f p90=%.0f "
                "p95=%.0f p99=%.0f p999=%.0f max=%.0f\n",
                name.c_str(), num("count"), num("mean"), num("min"),
                num("p50"), num("p90"), num("p95"), num("p99"), num("p999"),
                num("max"));
    const tools::Json* exemplars = entry->Get("exemplars");
    if (exemplars != nullptr && exemplars->Is(tools::Json::Kind::kArray) &&
        !exemplars->array.empty()) {
      std::printf("  slowest:");
      for (const tools::JsonPtr& exemplar : exemplars->array) {
        const tools::Json* id = exemplar->Get("id");
        const tools::Json* value = exemplar->Get("value");
        if (id == nullptr || value == nullptr) continue;
        std::printf(" id=%.0f(%.0fus)", id->number, value->number);
      }
      std::printf("  <- request ids resolve to span trees in the trace\n");
    }
  }
  if (metric.has_value() && hdr->Get(*metric) == nullptr) {
    std::fprintf(stderr, "metric %s not found in %s\n", metric->c_str(),
                 path.c_str());
    return 1;
  }
  return 0;
}

/// `ganns stat`: reads a --stats-out registry export and prints its SLO
/// summaries. With --metric and --quantile it prints exactly one number so
/// shell scripts (and the ctest percentile cross-check) can consume it.
/// With --watch it re-reads the file every --interval-ms (bounded by
/// --iterations; 0 = forever), tolerating transient parse failures while a
/// live run rewrites the artifact.
int CmdStat(int argc, char** argv) {
  if (argc < 3 || std::strncmp(argv[2], "--", 2) == 0) {
    std::fprintf(stderr,
                 "usage: ganns stat <stats.json|cluster report|BENCH_*.json> "
                 "[--metric NAME] [--quantile p50|p90|p95|p99|p999] "
                 "[--path a.b.c] "
                 "[--watch [--iterations N] [--interval-ms 1000]]\n");
    return 2;
  }
  const std::string path = argv[2];
  const Args args(argc, argv, 3);
  if (!args.Flag("watch")) return StatOnce(path, args);

  const long iterations = args.Int("iterations", 0);
  const long interval_ms = args.Int("interval-ms", 1000);
  for (long i = 0; iterations <= 0 || i < iterations; ++i) {
    if (i > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    std::printf("--- %s (refresh %ld) ---\n", path.c_str(), i + 1);
    StatOnce(path, args);
    std::fflush(stdout);
  }
  return 0;
}

/// Reads a --series-out / --federation-out JSONL file into one parsed window
/// object per line. With `tolerate_partial_tail` (the live-view modes), a
/// final line that fails to parse is treated as a write in progress and
/// dropped — the next poll re-reads the file and picks it up once complete.
/// A malformed line anywhere else is always an error.
std::vector<tools::JsonPtr> ReadSeriesWindows(const std::string& path,
                                              std::string* error,
                                              bool tolerate_partial_tail) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open " + path;
    return {};
  }
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  std::vector<tools::JsonPtr> windows;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    tools::Parser parser(lines[i]);
    tools::JsonPtr window = parser.Parse();
    if (window == nullptr) {
      if (tolerate_partial_tail && i + 1 == lines.size()) break;
      *error = path + ":" + std::to_string(i + 1) + ": " + parser.error();
      return {};
    }
    windows.push_back(std::move(window));
  }
  return windows;
}

double SeriesNumber(const tools::Json& window, const char* section,
                    const char* name) {
  const tools::Json* object = window.Get(section);
  if (object == nullptr || !object->Is(tools::Json::Kind::kObject)) return 0;
  const tools::Json* value = object->Get(name);
  return value != nullptr && value->Is(tools::Json::Kind::kNumber)
             ? value->number
             : 0;
}

/// Renders the last `rows` windows of the ring as a fixed-width table.
void RenderTop(const std::vector<tools::JsonPtr>& windows, std::size_t rows) {
  std::printf("%6s %8s %9s %8s %8s %9s %6s %9s\n", "seq", "win_ms", "qps",
              "p50_us", "p99_us", "headroom", "qsat", "rejected");
  const std::size_t first = windows.size() > rows ? windows.size() - rows : 0;
  for (std::size_t i = first; i < windows.size(); ++i) {
    const tools::Json& window = *windows[i];
    const double interval_us =
        window.Get("interval_us") != nullptr ? window.Get("interval_us")->number
                                             : 0;
    const double served = SeriesNumber(window, "counters", "serve.served");
    const double qps = interval_us > 0 ? served / (interval_us / 1e6) : 0;
    const tools::Json* hdr = window.Get("hdr");
    const tools::Json* latency =
        hdr != nullptr ? hdr->Get("serve.latency_us") : nullptr;
    const double p50 = latency != nullptr && latency->Get("p50") != nullptr
                           ? latency->Get("p50")->number
                           : 0;
    const double p99 = latency != nullptr && latency->Get("p99") != nullptr
                           ? latency->Get("p99")->number
                           : 0;
    std::printf("%6.0f %8.1f %9.0f %8.0f %8.0f %9.3f %6.3f %9.0f\n",
                window.Get("seq") != nullptr ? window.Get("seq")->number : 0,
                interval_us / 1000.0, qps, p50, p99,
                SeriesNumber(window, "derived", "slo_headroom"),
                SeriesNumber(window, "derived", "queue_saturation"),
                SeriesNumber(window, "counters", "serve.rejected"));
  }
  std::printf("%zu of %zu windows shown\n", windows.size() - first,
              windows.size());
}

/// `ganns top`: live terminal view over a --series-out ring. One render by
/// default; --follow (or --iterations N) re-reads the file every
/// --interval-ms and redraws.
int CmdTop(int argc, char** argv) {
  if (argc < 3 || std::strncmp(argv[2], "--", 2) == 0) {
    std::fprintf(stderr,
                 "usage: ganns top <series.jsonl> [--rows 10] [--follow] "
                 "[--iterations N] [--interval-ms 1000]\n");
    return 2;
  }
  const std::string path = argv[2];
  const Args args(argc, argv, 3);
  const auto rows = static_cast<std::size_t>(args.Int("rows", 10));
  const bool follow = args.Flag("follow");
  const long iterations = args.Int("iterations", follow ? 0 : 1);
  const long interval_ms = args.Int("interval-ms", 1000);

  for (long i = 0; iterations <= 0 || i < iterations; ++i) {
    if (i > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    std::string error;
    // A live view additionally tolerates a truncated final line (a window
    // mid-append): it renders what parsed and retries the tail next poll.
    const std::vector<tools::JsonPtr> windows =
        ReadSeriesWindows(path, &error, /*tolerate_partial_tail=*/
                          iterations != 1);
    if (!error.empty()) {
      std::fprintf(stderr, "%s\n", error.c_str());
      // A single-shot render fails loudly; a live view tolerates a file
      // mid-rewrite and tries again next interval.
      if (iterations == 1) return 1;
      continue;
    }
    if (follow) std::printf("\033[2J\033[H");  // clear + home before redraw
    RenderTop(windows, rows);
    std::fflush(stdout);
  }
  return 0;
}

/// Pulls a named number out of one federated window's per-node "counters" /
/// "gauges" / "hdr.<metric>.<field>" sections (0 when absent).
double NodeNumber(const tools::Json& node, const char* section,
                  const char* name) {
  const tools::Json* object = node.Get(section);
  if (object == nullptr || !object->Is(tools::Json::Kind::kObject)) return 0;
  const tools::Json* value = object->Get(name);
  return value != nullptr && value->Is(tools::Json::Kind::kNumber)
             ? value->number
             : 0;
}

double HdrField(const tools::Json& scope, const char* metric,
                const char* field) {
  const tools::Json* hdr = scope.Get("hdr");
  if (hdr == nullptr) return 0;
  const tools::Json* entry = hdr->Get(metric);
  if (entry == nullptr || !entry->Is(tools::Json::Kind::kObject)) return 0;
  const tools::Json* value = entry->Get(field);
  return value != nullptr && value->Is(tools::Json::Kind::kNumber)
             ? value->number
             : 0;
}

/// Renders the cluster dashboard: a trend row per federated window (cluster
/// scope), then the latest window's per-node table, then any alerts firing
/// as of that window.
void RenderClusterTop(const std::vector<tools::JsonPtr>& windows,
                      const std::vector<tools::JsonPtr>& alert_events,
                      std::size_t rows) {
  std::printf("%5s %9s %8s %9s %9s %9s %6s %6s %9s\n", "seq", "t_ms",
              "win_ms", "qps", "p99_us", "headroom", "qsat", "lost",
              "scrape_b");
  const std::size_t first = windows.size() > rows ? windows.size() - rows : 0;
  for (std::size_t i = first; i < windows.size(); ++i) {
    const tools::Json& window = *windows[i];
    const tools::Json* cluster = window.Get("cluster");
    const double interval_us =
        window.Get("interval_us") != nullptr
            ? window.Get("interval_us")->number
            : 0;
    const double served =
        cluster != nullptr
            ? NodeNumber(*cluster, "counters", "cluster.served_queries")
            : 0;
    std::printf(
        "%5.0f %9.2f %8.2f %9.0f %9.0f %9.3f %6.3f %6.0f %9.0f\n",
        window.Get("seq") != nullptr ? window.Get("seq")->number : 0,
        (window.Get("t_us") != nullptr ? window.Get("t_us")->number : 0) /
            1000.0,
        interval_us / 1000.0,
        interval_us > 0 ? served / (interval_us / 1e6) : 0,
        cluster != nullptr ? HdrField(*cluster, "cluster.batch_us", "p99") : 0,
        SeriesNumber(window, "derived", "slo_headroom"),
        SeriesNumber(window, "derived", "queue_saturation"),
        cluster != nullptr
            ? NodeNumber(*cluster, "counters", "cluster.lost_sub_queries")
            : 0,
        window.Get("scrape_bytes") != nullptr
            ? window.Get("scrape_bytes")->number
            : 0);
  }
  if (windows.empty()) {
    std::printf("no federated windows yet\n");
    return;
  }

  const tools::Json& last = *windows.back();
  const tools::Json* nodes = last.Get("nodes");
  if (nodes != nullptr && nodes->Is(tools::Json::Kind::kArray)) {
    std::printf("%5s %8s %7s %9s %9s %9s %9s %9s\n", "node", "state",
                "scrape", "served", "p99_us", "recv_b", "sent_b", "timeouts");
    for (const tools::JsonPtr& node : nodes->array) {
      const tools::Json* state = node->Get("state");
      const tools::Json* scrape_ok = node->Get("scrape_ok");
      std::printf(
          "%5.0f %8s %7s %9.0f %9.0f %9.0f %9.0f %9.0f\n",
          node->Get("node") != nullptr ? node->Get("node")->number : 0,
          state != nullptr && state->Is(tools::Json::Kind::kString)
              ? state->string.c_str()
              : "?",
          scrape_ok != nullptr && scrape_ok->Is(tools::Json::Kind::kBool) &&
                  scrape_ok->boolean
              ? "ok"
              : "FAIL",
          NodeNumber(*node, "counters", "cluster.node.served_queries"),
          HdrField(*node, "cluster.node.serve_us", "p99"),
          NodeNumber(*node, "counters", "cluster.node.recv_bytes"),
          NodeNumber(*node, "counters", "cluster.node.sent_bytes"),
          NodeNumber(*node, "counters", "cluster.node.timeouts"));
    }
  }

  // Replay the alert log up to the rendered window: a (rule, node) pair is
  // shown iff its latest transition at or before t_us is a firing.
  if (!alert_events.empty()) {
    const double now_us =
        last.Get("t_us") != nullptr ? last.Get("t_us")->number : 0;
    std::map<std::string, bool> firing;
    for (const tools::JsonPtr& event : alert_events) {
      const tools::Json* t = event->Get("t_us");
      const tools::Json* rule = event->Get("rule");
      const tools::Json* node = event->Get("node");
      const tools::Json* state = event->Get("state");
      if (t == nullptr || rule == nullptr || state == nullptr ||
          !state->Is(tools::Json::Kind::kString) || t->number > now_us) {
        continue;
      }
      std::string key = rule->string;
      if (node != nullptr && node->Is(tools::Json::Kind::kString) &&
          !node->string.empty()) {
        key += "(node=" + node->string + ")";
      }
      firing[key] = state->string == "firing";
    }
    std::string active;
    for (const auto& [key, is_firing] : firing) {
      if (!is_firing) continue;
      if (!active.empty()) active += ", ";
      active += key;
    }
    std::printf("alerts: %s\n", active.empty() ? "none" : active.c_str());
  }
  std::printf("%zu of %zu windows shown\n", windows.size() - first,
              windows.size());
}

/// `ganns cluster-top`: terminal dashboard over a cluster-bench
/// --federation-out JSONL stream (optionally joined with --alerts-out
/// events). One render by default; --follow/--iterations re-read and redraw
/// like `ganns top`.
int CmdClusterTop(int argc, char** argv) {
  if (argc < 3 || std::strncmp(argv[2], "--", 2) == 0) {
    std::fprintf(stderr,
                 "usage: ganns cluster-top <federation.jsonl> "
                 "[--alerts alerts.jsonl] [--rows 10] [--follow] "
                 "[--iterations N] [--interval-ms 1000]\n");
    return 2;
  }
  const std::string path = argv[2];
  const Args args(argc, argv, 3);
  const auto rows = static_cast<std::size_t>(args.Int("rows", 10));
  const bool follow = args.Flag("follow");
  const long iterations = args.Int("iterations", follow ? 0 : 1);
  const long interval_ms = args.Int("interval-ms", 1000);
  const auto alerts_path = args.Get("alerts");

  for (long i = 0; iterations <= 0 || i < iterations; ++i) {
    if (i > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    std::string error;
    const std::vector<tools::JsonPtr> windows =
        ReadSeriesWindows(path, &error, /*tolerate_partial_tail=*/
                          iterations != 1);
    std::vector<tools::JsonPtr> alert_events;
    if (error.empty() && alerts_path.has_value()) {
      alert_events = ReadSeriesWindows(*alerts_path, &error,
                                       /*tolerate_partial_tail=*/
                                       iterations != 1);
    }
    if (!error.empty()) {
      std::fprintf(stderr, "%s\n", error.c_str());
      if (iterations == 1) return 1;
      continue;
    }
    if (follow) std::printf("\033[2J\033[H");  // clear + home before redraw
    RenderClusterTop(windows, alert_events, rows);
    std::fflush(stdout);
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: ganns "
               "<gen|build|search|eval|profile|serve-bench|cluster-bench|"
               "update|stat|top|cluster-top> "
               "--flag value ...\n"
               "run with a subcommand to see its required flags\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "stat") return CmdStat(argc, argv);
  if (command == "top") return CmdTop(argc, argv);
  if (command == "cluster-top") return CmdClusterTop(argc, argv);
  const Args args(argc, argv, 2);
  if (command == "gen") return CmdGen(args);
  if (command == "build") return CmdBuild(args);
  if (command == "search") return CmdSearch(args);
  if (command == "eval") return CmdEval(args);
  if (command == "profile") return CmdProfile(args);
  if (command == "serve-bench") return CmdServeBench(args);
  if (command == "cluster-bench") return CmdClusterBench(args);
  if (command == "update") return CmdUpdate(args);
  return Usage();
}
