// ganns — command-line interface to the library, for driving real datasets
// through the index without writing C++:
//
//   ganns gen    --dataset SIFT1M --n 20000 --out base.fvecs
//                [--queries 200 --queries-out queries.fvecs] [--seed 1]
//   ganns build  --base base.fvecs --out index.gix [--metric l2|cosine]
//                [--d-max 32] [--d-min 16] [--groups 64] [--kernel ganns|song]
//                [--hnsw]
//   ganns search --index index.gix --base base.fvecs --queries queries.fvecs
//                --k 10 [--ln 64] [--e 0] [--out results.ivecs]
//   ganns eval   --base base.fvecs --queries queries.fvecs
//                --results results.ivecs --k 10 [--metric l2|cosine]
//
// All commands are deterministic for fixed inputs and seeds.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/ganns_index.h"
#include "data/ground_truth.h"
#include "data/io.h"
#include "data/synthetic.h"

namespace {

using namespace ganns;

/// --key value argument map with typed accessors.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        std::fprintf(stderr, "expected --flag, got '%s'\n", argv[i]);
        std::exit(2);
      }
      values_[argv[i] + 2] = argv[i + 1];
    }
    if ((argc - first) % 2 != 0) {
      // A trailing flag with no value: treat as boolean.
      values_[argv[argc - 1] + 2] = "true";
    }
  }

  std::optional<std::string> Get(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

  std::string Require(const std::string& key) const {
    const auto value = Get(key);
    if (!value.has_value()) {
      std::fprintf(stderr, "missing required flag --%s\n", key.c_str());
      std::exit(2);
    }
    return *value;
  }

  long Int(const std::string& key, long fallback) const {
    const auto value = Get(key);
    return value.has_value() ? std::atol(value->c_str()) : fallback;
  }

  bool Flag(const std::string& key) const { return Get(key).has_value(); }

 private:
  std::map<std::string, std::string> values_;
};

data::Metric ParseMetric(const Args& args) {
  const std::string name = args.Get("metric").value_or("l2");
  if (name == "l2") return data::Metric::kL2;
  if (name == "cosine") return data::Metric::kCosine;
  std::fprintf(stderr, "unknown metric '%s' (use l2|cosine)\n", name.c_str());
  std::exit(2);
}

data::Dataset LoadFvecsOrDie(const std::string& path, const char* what,
                             data::Metric metric) {
  auto dataset = data::ReadFvecs(path, what, metric);
  if (!dataset.has_value()) {
    std::fprintf(stderr, "failed to read %s from %s\n", what, path.c_str());
    std::exit(1);
  }
  return *std::move(dataset);
}

int CmdGen(const Args& args) {
  const data::DatasetSpec& spec = data::PaperDataset(args.Require("dataset"));
  const std::size_t n = static_cast<std::size_t>(args.Int("n", 20000));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.Int("seed", 1));

  const data::Dataset base = data::GenerateBase(spec, n, seed);
  if (!data::WriteFvecs(args.Require("out"), base)) {
    std::fprintf(stderr, "failed to write %s\n", args.Require("out").c_str());
    return 1;
  }
  std::printf("wrote %zu x %zud base vectors (%s, %s)\n", base.size(),
              base.dim(), spec.name.c_str(),
              spec.metric == data::Metric::kL2 ? "l2" : "cosine");

  if (const auto queries_out = args.Get("queries-out");
      queries_out.has_value()) {
    const std::size_t q = static_cast<std::size_t>(args.Int("queries", 200));
    const data::Dataset queries = data::GenerateQueries(spec, q, n, seed);
    if (!data::WriteFvecs(*queries_out, queries)) {
      std::fprintf(stderr, "failed to write %s\n", queries_out->c_str());
      return 1;
    }
    std::printf("wrote %zu query vectors\n", queries.size());
  }
  return 0;
}

int CmdBuild(const Args& args) {
  const data::Metric metric = ParseMetric(args);
  data::Dataset base = LoadFvecsOrDie(args.Require("base"), "base", metric);

  core::GannsIndex::Options options;
  options.nsw.d_max = static_cast<std::size_t>(args.Int("d-max", 32));
  options.nsw.d_min = static_cast<std::size_t>(args.Int("d-min", 16));
  options.nsw.ef_construction =
      static_cast<std::size_t>(args.Int("ef", 2 * options.nsw.d_min));
  options.num_groups = static_cast<int>(args.Int("groups", 64));
  if (args.Get("kernel").value_or("ganns") == "song") {
    options.construction_kernel = core::SearchKernel::kSong;
  }
  if (args.Flag("hnsw")) options.kind = core::GraphKind::kHnsw;

  core::GannsIndex index = core::GannsIndex::Build(std::move(base), options);
  const std::string out = args.Require("out");
  if (!index.Save(out)) {
    std::fprintf(stderr, "failed to save index to %s\n", out.c_str());
    return 1;
  }
  std::printf("built %s index over %zu points in %.3f simulated GPU s; "
              "saved to %s\n",
              options.kind == core::GraphKind::kHnsw ? "HNSW" : "NSW",
              index.base().size(), index.timing().build_seconds, out.c_str());
  return 0;
}

int CmdSearch(const Args& args) {
  const data::Metric metric = ParseMetric(args);
  data::Dataset base = LoadFvecsOrDie(args.Require("base"), "base", metric);
  const data::Dataset queries =
      LoadFvecsOrDie(args.Require("queries"), "queries", metric);

  auto index = core::GannsIndex::Load(args.Require("index"), std::move(base));
  if (!index.has_value()) {
    std::fprintf(stderr, "failed to load index %s\n",
                 args.Require("index").c_str());
    return 1;
  }

  const std::size_t k = static_cast<std::size_t>(args.Int("k", 10));
  core::GannsParams params;
  params.l_n = static_cast<std::size_t>(args.Int("ln", 64));
  params.e = static_cast<std::size_t>(args.Int("e", 0));

  const auto rows = index->Search(queries, k, params);
  std::printf("searched %zu queries (k=%zu, l_n=%zu, e=%zu) at %.0f "
              "simulated QPS\n",
              queries.size(), k, params.l_n, params.EffectiveE(),
              index->timing().last_search_qps);

  if (const auto out = args.Get("out"); out.has_value()) {
    std::vector<std::vector<std::int32_t>> ids(rows.size());
    for (std::size_t q = 0; q < rows.size(); ++q) {
      for (const auto& neighbor : rows[q]) {
        ids[q].push_back(static_cast<std::int32_t>(neighbor.id));
      }
    }
    if (!data::WriteIvecs(*out, ids)) {
      std::fprintf(stderr, "failed to write %s\n", out->c_str());
      return 1;
    }
    std::printf("wrote results to %s\n", out->c_str());
  } else {
    for (std::size_t q = 0; q < std::min<std::size_t>(rows.size(), 5); ++q) {
      std::printf("query %zu:", q);
      for (const auto& neighbor : rows[q]) {
        std::printf(" %u(%.3f)", neighbor.id, neighbor.dist);
      }
      std::printf("\n");
    }
  }
  return 0;
}

int CmdEval(const Args& args) {
  const data::Metric metric = ParseMetric(args);
  const data::Dataset base =
      LoadFvecsOrDie(args.Require("base"), "base", metric);
  const data::Dataset queries =
      LoadFvecsOrDie(args.Require("queries"), "queries", metric);
  const auto results = data::ReadIvecs(args.Require("results"));
  if (!results.has_value() || results->size() != queries.size()) {
    std::fprintf(stderr, "results file missing or row count mismatch\n");
    return 1;
  }

  const std::size_t k = static_cast<std::size_t>(args.Int("k", 10));
  const data::GroundTruth truth = data::BruteForceKnn(base, queries, k);
  std::vector<std::vector<VertexId>> ids(results->size());
  for (std::size_t q = 0; q < results->size(); ++q) {
    for (std::int32_t id : (*results)[q]) {
      ids[q].push_back(static_cast<VertexId>(id));
    }
  }
  std::printf("recall@%zu = %.4f over %zu queries\n", k,
              data::MeanRecall(ids, truth, k), queries.size());
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: ganns <gen|build|search|eval> --flag value ...\n"
               "run with a subcommand to see its required flags\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Args args(argc, argv, 2);
  if (command == "gen") return CmdGen(args);
  if (command == "build") return CmdBuild(args);
  if (command == "search") return CmdSearch(args);
  if (command == "eval") return CmdEval(args);
  return Usage();
}
