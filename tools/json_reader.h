// Minimal JSON DOM + recursive-descent parser shared by the repo's
// command-line tools (schema_check, bench_diff, `ganns stat`). No external
// dependencies; the DOM is a tree of variant nodes that callers walk
// directly. Numbers are doubles (adequate for every artifact we emit);
// \u escapes are validated but decoded to '?' — no tool compares non-ASCII
// content.

#ifndef GANNS_TOOLS_JSON_READER_H_
#define GANNS_TOOLS_JSON_READER_H_

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace ganns {
namespace tools {

struct Json;
using JsonPtr = std::unique_ptr<Json>;

struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonPtr> array;
  std::map<std::string, JsonPtr> object;

  bool Is(Kind k) const { return kind == k; }
  const Json* Get(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : it->second.get();
  }
};

class Parser {
 public:
  explicit Parser(std::string text) : text_(std::move(text)) {}

  JsonPtr Parse() {
    JsonPtr value = ParseValue();
    if (value == nullptr) return nullptr;
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return value;
  }

  const std::string& error() const { return error_; }

 private:
  JsonPtr Fail(const char* message) {
    if (error_.empty()) {
      // 1-based line/column of the failure point, so editors and humans can
      // jump straight to it; the raw offset stays for byte-level tooling.
      std::size_t line = 1, column = 1;
      for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
        if (text_[i] == '\n') {
          ++line;
          column = 1;
        } else {
          ++column;
        }
      }
      std::ostringstream out;
      out << message << " at line " << line << " column " << column
          << " (offset " << pos_ << ")";
      error_ = out.str();
    }
    return nullptr;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonPtr ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  JsonPtr ParseObject() {
    if (!Consume('{')) return Fail("expected '{'");
    auto node = std::make_unique<Json>();
    node->kind = Json::Kind::kObject;
    SkipSpace();
    if (Consume('}')) return node;
    for (;;) {
      JsonPtr key = ParseString();
      if (key == nullptr) return nullptr;
      if (!Consume(':')) return Fail("expected ':'");
      JsonPtr value = ParseValue();
      if (value == nullptr) return nullptr;
      node->object.emplace(std::move(key->string), std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return node;
      return Fail("expected ',' or '}'");
    }
  }

  JsonPtr ParseArray() {
    if (!Consume('[')) return Fail("expected '['");
    auto node = std::make_unique<Json>();
    node->kind = Json::Kind::kArray;
    SkipSpace();
    if (Consume(']')) return node;
    for (;;) {
      JsonPtr value = ParseValue();
      if (value == nullptr) return nullptr;
      node->array.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return node;
      return Fail("expected ',' or ']'");
    }
  }

  JsonPtr ParseString() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected string");
    }
    ++pos_;
    auto node = std::make_unique<Json>();
    node->kind = Json::Kind::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
            pos_ += 4;
            c = '?';
            break;
          }
          default:
            return Fail("bad escape");
        }
      }
      node->string.push_back(c);
    }
    if (pos_ >= text_.size()) return Fail("unterminated string");
    ++pos_;  // closing quote
    return node;
  }

  JsonPtr ParseBool() {
    auto node = std::make_unique<Json>();
    node->kind = Json::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      node->boolean = true;
      pos_ += 4;
      return node;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      node->boolean = false;
      pos_ += 5;
      return node;
    }
    return Fail("expected boolean");
  }

  JsonPtr ParseNull() {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return std::make_unique<Json>();
    }
    return Fail("expected null");
  }

  JsonPtr ParseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected value");
    auto node = std::make_unique<Json>();
    node->kind = Json::Kind::kNumber;
    node->number = std::strtod(text_.c_str() + start, nullptr);
    return node;
  }

  std::string text_;
  std::size_t pos_ = 0;
  std::string error_;
};

/// Reads `path` and parses it as JSON. On failure returns nullptr and
/// writes a human-readable reason into *error.
inline JsonPtr ParseJsonFile(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open " + path;
    return nullptr;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Parser parser(buffer.str());
  JsonPtr root = parser.Parse();
  if (root == nullptr) *error = path + ": " + parser.error();
  return root;
}

}  // namespace tools
}  // namespace ganns

#endif  // GANNS_TOOLS_JSON_READER_H_
