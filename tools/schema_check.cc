// schema_check — validates the observability JSON artifacts:
//
//   schema_check trace   <trace.json>     Chrome/Perfetto trace_event file
//   schema_check metrics <metrics.json>   MetricsRegistry export
//   schema_check stats   <stats.json>     serving stats export (registry
//                                         JSON whose hdr section must hold
//                                         coherent percentile summaries)
//   schema_check bench   <BENCH_*.json>   bench artifact: provenance block
//                                         plus a results/quantized row array
//                                         (quantized rows are field-checked)
//   schema_check prom    <metrics.prom>   Prometheus text exposition: name
//                                         charset, TYPE declarations, label
//                                         quoting/escaping and ordering,
//                                         cumulative histogram buckets, and
//                                         summary quantile lines ("--prom"
//                                         is accepted as an alias)
//   schema_check cluster <BENCH_cluster.json | cluster report>
//                                         cluster serving report: headline
//                                         counters, per-node stats
//                                         completeness (state, served,
//                                         timeouts, transfer bytes) and the
//                                         aggregator flush-accounting
//                                         invariant (capacity + deadline +
//                                         shutdown == total_flushes); accepts
//                                         both the bench results array and
//                                         the single `ganns cluster-bench
//                                         --json` report
//   schema_check federation <fed.jsonl>   federated window stream
//                                         (`cluster-bench --federation-out`):
//                                         monotone seq / non-decreasing time,
//                                         per-node state + scrape_ok +
//                                         counters/gauges/hdr sections,
//                                         cluster roll-up and the derived
//                                         alert inputs; failed scrapes must
//                                         carry zero counter deltas
//   schema_check alerts  <alerts.jsonl> [rule ...]
//                                         alert event log (`cluster-bench
//                                         --alerts-out`): each line a
//                                         firing/resolved transition, with
//                                         per-(rule,node) alternation
//                                         starting at firing; trailing args
//                                         name rules that must both fire and
//                                         resolve (the failure-drill gate)
//   schema_check flight  <flight.json>    flight-recorder dump: counters,
//                                         violator records (served
//                                         violators must carry hardness and
//                                         a complete span tree; terminal
//                                         ones a root + terminal instant
//                                         and no kernel stages), batch
//                                         contexts
//
// Exit code 0 iff the file parses as JSON and matches the expected schema.
// The JSON DOM/parser lives in tools/json_reader.h (shared with bench_diff
// and `ganns stat`). Used by ctest to gate the `ganns profile` pipeline and
// the serving trace/stats artifacts.
//
// Beyond per-event field checks, `trace` validates the serving process
// (pid 2): every request track (tid >= 1024) must carry exactly one
// serve.request root span, every other event on the track must fall inside
// the root, and tracks ending in a terminal instant (serve.rejected /
// serve.expired / serve.shutdown) must not contain fan-out, shard, or merge
// spans — the request never reached a kernel.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "tools/json_reader.h"

namespace {

using ganns::tools::Json;
using ganns::tools::JsonPtr;

// Mirrors the track layout in src/obs/trace.h.
constexpr double kServePid = 2;
constexpr double kServeRequestTrackBase = 1024;
// Wall timestamps are %.3f microseconds; allow one printed quantum of slop
// at containment boundaries.
constexpr double kContainEps = 0.01;

int Complain(const char* what) {
  std::fprintf(stderr, "schema error: %s\n", what);
  return 1;
}

int ComplainTrack(const char* what, double tid) {
  std::fprintf(stderr, "schema error: %s (serving track %.0f)\n", what, tid);
  return 1;
}

bool IsNumber(const Json* node) {
  return node != nullptr && node->Is(Json::Kind::kNumber);
}

bool IsString(const Json* node) {
  return node != nullptr && node->Is(Json::Kind::kString);
}

/// One serving-pid event reduced to what the shape check needs.
struct ServeEvent {
  std::string name;
  bool is_span = false;  // X (span) vs i (instant)
  double ts = 0;
  double dur = 0;
};

/// Validates the per-request span trees on the serving process. Returns 0
/// and reports the number of complete trees on success.
int CheckServingShape(
    const std::map<double, std::vector<ServeEvent>>& tracks) {
  std::size_t trees = 0;
  for (const auto& [tid, events] : tracks) {
    const ServeEvent* root = nullptr;
    bool terminal = false;
    bool kernel_stage = false;
    for (const ServeEvent& event : events) {
      if (event.name == "serve.request") {
        if (!event.is_span) {
          return ComplainTrack("serve.request is not a span", tid);
        }
        if (root != nullptr) {
          return ComplainTrack("more than one serve.request root", tid);
        }
        root = &event;
      } else if (event.name == "serve.rejected" ||
                 event.name == "serve.expired" ||
                 event.name == "serve.shutdown") {
        terminal = true;
      } else if (event.name == "serve.shard_fanout" ||
                 event.name == "serve.shard_search" ||
                 event.name == "serve.merge") {
        kernel_stage = true;
      }
    }
    if (root == nullptr) {
      return ComplainTrack("request track has no serve.request root", tid);
    }
    if (terminal && kernel_stage) {
      return ComplainTrack(
          "terminal request carries fan-out/shard/merge spans", tid);
    }
    const double begin = root->ts - kContainEps;
    const double end = root->ts + root->dur + kContainEps;
    for (const ServeEvent& event : events) {
      if (&event == root) continue;
      if (event.ts < begin || event.ts + event.dur > end) {
        return ComplainTrack("event escapes its serve.request root", tid);
      }
    }
    ++trees;
  }
  if (trees > 0) {
    std::printf("serving ok: %zu request span trees\n", trees);
  }
  return 0;
}

/// Chrome trace_event format: {"traceEvents": [...]} where every event has
/// name/ph/pid/tid/ts; "X" events additionally carry a non-negative dur;
/// "M" (metadata) events carry args.name. Serving-pid request tracks are
/// additionally shape-checked (see CheckServingShape).
int CheckTrace(const Json& root) {
  if (!root.Is(Json::Kind::kObject)) return Complain("root is not an object");
  const Json* events = root.Get("traceEvents");
  if (events == nullptr || !events->Is(Json::Kind::kArray)) {
    return Complain("missing traceEvents array");
  }
  std::size_t spans = 0;
  std::map<double, std::vector<ServeEvent>> serve_tracks;
  for (const JsonPtr& event : events->array) {
    if (!event->Is(Json::Kind::kObject)) {
      return Complain("event is not an object");
    }
    const Json* name = event->Get("name");
    if (!IsString(name)) return Complain("event missing name");
    const Json* ph = event->Get("ph");
    if (!IsString(ph)) return Complain("event missing ph");
    const Json* pid = event->Get("pid");
    const Json* tid = event->Get("tid");
    if (!IsNumber(pid)) return Complain("event missing pid");
    if (!IsNumber(tid)) return Complain("event missing tid");
    if (ph->string == "X") {
      if (!IsNumber(event->Get("ts"))) return Complain("X event missing ts");
      const Json* dur = event->Get("dur");
      if (!IsNumber(dur) || dur->number < 0) {
        return Complain("X event missing non-negative dur");
      }
      ++spans;
    } else if (ph->string == "i") {
      if (!IsNumber(event->Get("ts"))) return Complain("i event missing ts");
    } else if (ph->string == "M") {
      const Json* args = event->Get("args");
      if (args == nullptr || !args->Is(Json::Kind::kObject) ||
          !IsString(args->Get("name"))) {
        return Complain("M event missing args.name");
      }
      continue;
    } else if (ph->string == "s" || ph->string == "t" || ph->string == "f") {
      // Flow events (start/step/end) stitch a request's spans across
      // process/track boundaries; they bind by (pid, tid, ts) + id.
      if (!IsNumber(event->Get("ts"))) {
        return Complain("flow event missing ts");
      }
      if (!IsNumber(event->Get("id"))) {
        return Complain("flow event missing id");
      }
      continue;
    } else {
      return Complain("unknown event phase (expect X/i/M/s/t/f)");
    }
    if (pid->number == kServePid && tid->number >= kServeRequestTrackBase) {
      ServeEvent reduced;
      reduced.name = name->string;
      reduced.is_span = ph->string == "X";
      reduced.ts = event->Get("ts")->number;
      reduced.dur = reduced.is_span ? event->Get("dur")->number : 0;
      serve_tracks[tid->number].push_back(std::move(reduced));
    }
  }
  const int serving = CheckServingShape(serve_tracks);
  if (serving != 0) return serving;
  std::printf("trace ok: %zu events (%zu spans)\n", events->array.size(),
              spans);
  return 0;
}

/// One hdr summary: count/sum/min/max/mean plus monotone percentiles and
/// exemplars carrying {id, value} links back to request traces.
int CheckHdrEntry(const std::string& name, const Json& hdr) {
  const std::string where = "hdr." + name;
  if (!hdr.Is(Json::Kind::kObject)) {
    return Complain((where + " is not an object").c_str());
  }
  for (const char* key :
       {"count", "sum", "min", "max", "mean", "p50", "p90", "p95", "p99",
        "p999"}) {
    if (!IsNumber(hdr.Get(key))) {
      return Complain((where + " missing " + key).c_str());
    }
  }
  if (hdr.Get("count")->number > 0) {
    const double quantiles[] = {
        hdr.Get("min")->number, hdr.Get("p50")->number,
        hdr.Get("p90")->number, hdr.Get("p95")->number,
        hdr.Get("p99")->number, hdr.Get("p999")->number,
        hdr.Get("max")->number};
    for (std::size_t i = 1; i < std::size(quantiles); ++i) {
      if (quantiles[i] < quantiles[i - 1]) {
        return Complain((where + " percentiles are not monotone").c_str());
      }
    }
  }
  const Json* exemplars = hdr.Get("exemplars");
  if (exemplars == nullptr || !exemplars->Is(Json::Kind::kArray)) {
    return Complain((where + " missing exemplars array").c_str());
  }
  for (const JsonPtr& exemplar : exemplars->array) {
    if (!exemplar->Is(Json::Kind::kObject) ||
        !IsNumber(exemplar->Get("id")) || !IsNumber(exemplar->Get("value"))) {
      return Complain((where + " exemplar is not {id, value}").c_str());
    }
  }
  return 0;
}

/// MetricsRegistry export: {"counters":{name:int}, "gauges":{name:number},
/// "histograms":{name:{count,sum,max,mean,bounds[],buckets[]}}} with
/// len(buckets) == len(bounds) + 1 and count == sum of buckets. When
/// require_hdr is set (stats mode) the "hdr" object must exist, be
/// non-empty, and every entry must pass CheckHdrEntry.
int CheckMetrics(const Json& root, bool require_hdr) {
  if (!root.Is(Json::Kind::kObject)) return Complain("root is not an object");
  const Json* counters = root.Get("counters");
  const Json* gauges = root.Get("gauges");
  const Json* histograms = root.Get("histograms");
  if (counters == nullptr || !counters->Is(Json::Kind::kObject)) {
    return Complain("missing counters object");
  }
  if (gauges == nullptr || !gauges->Is(Json::Kind::kObject)) {
    return Complain("missing gauges object");
  }
  if (histograms == nullptr || !histograms->Is(Json::Kind::kObject)) {
    return Complain("missing histograms object");
  }
  for (const auto& [name, value] : counters->object) {
    if (!IsNumber(value.get()) || value->number < 0) {
      return Complain("counter is not a non-negative number");
    }
  }
  for (const auto& [name, value] : gauges->object) {
    if (!IsNumber(value.get())) return Complain("gauge is not a number");
  }
  for (const auto& [name, hist] : histograms->object) {
    if (!hist->Is(Json::Kind::kObject)) {
      return Complain("histogram is not an object");
    }
    for (const char* key : {"count", "sum", "max"}) {
      if (!IsNumber(hist->Get(key))) {
        return Complain("histogram missing count/sum/max");
      }
    }
    const Json* bounds = hist->Get("bounds");
    const Json* buckets = hist->Get("buckets");
    if (bounds == nullptr || !bounds->Is(Json::Kind::kArray) ||
        buckets == nullptr || !buckets->Is(Json::Kind::kArray)) {
      return Complain("histogram missing bounds/buckets arrays");
    }
    if (buckets->array.size() != bounds->array.size() + 1) {
      return Complain("histogram buckets size != bounds size + 1");
    }
    double bucket_total = 0;
    for (const JsonPtr& b : buckets->array) {
      if (!IsNumber(b.get())) return Complain("bucket is not a number");
      bucket_total += b->number;
    }
    if (bucket_total != hist->Get("count")->number) {
      return Complain("histogram count != sum of buckets");
    }
  }
  const Json* hdr = root.Get("hdr");
  std::size_t hdr_count = 0;
  if (require_hdr &&
      (hdr == nullptr || !hdr->Is(Json::Kind::kObject) ||
       hdr->object.empty())) {
    return Complain("stats file missing non-empty hdr object");
  }
  if (hdr != nullptr && hdr->Is(Json::Kind::kObject)) {
    for (const auto& [name, entry] : hdr->object) {
      const int rc = CheckHdrEntry(name, *entry);
      if (rc != 0) return rc;
      ++hdr_count;
    }
  }
  std::printf("metrics ok: %zu counters, %zu gauges, %zu histograms, %zu hdr\n",
              counters->object.size(), gauges->object.size(),
              histograms->object.size(), hdr_count);
  return 0;
}

/// BENCH_*.json artifact: a provenance object (git sha/date/host/flags
/// strings, see bench::ProvenanceJson) plus at least one row array named
/// "results" or "quantized". Rows must be objects; "quantized" rows (the
/// compressed-search table) are field-checked: precision string, numeric
/// rerank_factor / sim_qps / resident_bytes_per_vector, recall in [0, 1],
/// and a positive byte count — so bench_diff never gates on a malformed
/// artifact that happens to flatten to plausible paths.
int CheckBench(const Json& root) {
  if (!root.Is(Json::Kind::kObject)) return Complain("root is not an object");
  const Json* provenance = root.Get("provenance");
  if (provenance == nullptr || !provenance->Is(Json::Kind::kObject)) {
    return Complain("missing provenance object");
  }
  for (const auto& [key, value] : provenance->object) {
    if (!IsString(value.get())) {
      return Complain("provenance field is not a string");
    }
  }
  std::size_t rows = 0;
  std::size_t arrays = 0;
  for (const char* section : {"results", "quantized"}) {
    const Json* array = root.Get(section);
    if (array == nullptr) continue;
    if (!array->Is(Json::Kind::kArray)) {
      return Complain("row section is not an array");
    }
    if (array->array.empty()) return Complain("row section is empty");
    ++arrays;
    for (const JsonPtr& row : array->array) {
      if (!row->Is(Json::Kind::kObject)) {
        return Complain("bench row is not an object");
      }
      ++rows;
      if (std::strcmp(section, "quantized") != 0) continue;
      if (!IsString(row->Get("precision"))) {
        return Complain("quantized row missing precision string");
      }
      for (const char* key :
           {"rerank_factor", "recall", "sim_qps",
            "resident_bytes_per_vector"}) {
        if (!IsNumber(row->Get(key))) {
          return Complain(
              (std::string("quantized row missing ") + key).c_str());
        }
      }
      const double recall = row->Get("recall")->number;
      if (recall < 0 || recall > 1) {
        return Complain("quantized recall outside [0, 1]");
      }
      if (row->Get("resident_bytes_per_vector")->number <= 0) {
        return Complain("quantized resident bytes not positive");
      }
    }
  }
  if (arrays == 0) return Complain("missing results/quantized row array");
  std::printf("bench ok: %zu rows in %zu sections\n", rows, arrays);
  return 0;
}

// ---------------------------------------------------------------------------
// Cluster reports (BENCH_cluster.json and `ganns cluster-bench --json`)
// ---------------------------------------------------------------------------

/// One cluster report row: headline counters, the aggregator's flush
/// accounting (whose triggers must sum to total_flushes — every buffered
/// message leaves through exactly one of capacity/deadline/shutdown), and a
/// complete per-node stats array.
int CheckClusterRow(const Json& row) {
  for (const char* key : {"nodes", "replication", "served", "lost",
                          "failovers", "timeouts"}) {
    if (!IsNumber(row.Get(key))) {
      return Complain((std::string("cluster row missing ") + key).c_str());
    }
  }
  if (!IsString(row.Get("selection"))) {
    return Complain("cluster row missing selection string");
  }
  const Json* recall = row.Get("recall");
  if (!IsNumber(recall) || recall->number < 0 || recall->number > 1) {
    return Complain("cluster recall outside [0, 1]");
  }
  const Json* sim_qps = row.Get("sim_qps");
  if (!IsNumber(sim_qps) || sim_qps->number < 0) {
    return Complain("cluster sim_qps missing or negative");
  }

  const Json* aggregator = row.Get("aggregator");
  if (aggregator == nullptr || !aggregator->Is(Json::Kind::kObject)) {
    return Complain("cluster row missing aggregator object");
  }
  for (const char* key :
       {"enqueued_messages", "enqueued_bytes", "capacity_flushes",
        "deadline_flushes", "shutdown_flushes", "total_flushes",
        "sent_bytes", "coalescing_factor"}) {
    const Json* value = aggregator->Get(key);
    if (!IsNumber(value) || value->number < 0) {
      return Complain(
          (std::string("aggregator missing non-negative ") + key).c_str());
    }
  }
  const double flush_sum = aggregator->Get("capacity_flushes")->number +
                           aggregator->Get("deadline_flushes")->number +
                           aggregator->Get("shutdown_flushes")->number;
  if (flush_sum != aggregator->Get("total_flushes")->number) {
    return Complain(
        "aggregator flush accounting broken: capacity + deadline + shutdown "
        "!= total_flushes");
  }

  const Json* node_stats = row.Get("node_stats");
  if (node_stats == nullptr || !node_stats->Is(Json::Kind::kArray) ||
      node_stats->array.empty()) {
    return Complain("cluster row missing non-empty node_stats array");
  }
  if (node_stats->array.size() != row.Get("nodes")->number) {
    return Complain("node_stats length != nodes");
  }
  for (const JsonPtr& node : node_stats->array) {
    if (!node->Is(Json::Kind::kObject)) {
      return Complain("node_stats entry is not an object");
    }
    for (const char* key : {"id", "served_sub_batches", "served_queries",
                            "timeouts", "transfer_bytes"}) {
      const Json* value = node->Get(key);
      if (!IsNumber(value) || value->number < 0) {
        return Complain(
            (std::string("node_stats missing non-negative ") + key).c_str());
      }
    }
    const Json* state = node->Get("state");
    if (!IsString(state) ||
        (state->string != "up" && state->string != "suspect" &&
         state->string != "down")) {
      return Complain("node_stats state is not up/suspect/down");
    }
    const Json* hosted = node->Get("hosted_shards");
    if (hosted == nullptr || !hosted->Is(Json::Kind::kArray)) {
      return Complain("node_stats missing hosted_shards array");
    }
  }
  return 0;
}

/// Accepts both artifact shapes: the bench file (provenance + results row
/// array, each row a full cluster report) and the single-report object that
/// `ganns cluster-bench --json` writes (detected by a top-level node_stats).
int CheckCluster(const Json& root) {
  if (!root.Is(Json::Kind::kObject)) return Complain("root is not an object");
  if (root.Get("node_stats") != nullptr) {
    const int rc = CheckClusterRow(root);
    if (rc != 0) return rc;
    std::printf("cluster ok: 1 report\n");
    return 0;
  }
  const Json* results = root.Get("results");
  if (results == nullptr || !results->Is(Json::Kind::kArray) ||
      results->array.empty()) {
    return Complain("missing non-empty results array");
  }
  for (const JsonPtr& row : results->array) {
    if (!row->Is(Json::Kind::kObject)) {
      return Complain("cluster row is not an object");
    }
    const int rc = CheckClusterRow(*row);
    if (rc != 0) return rc;
  }
  std::printf("cluster ok: %zu rows\n", results->array.size());
  return 0;
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

int ComplainLine(std::size_t line, const char* what) {
  std::fprintf(stderr, "schema error: line %zu: %s\n", line, what);
  return 1;
}

bool IsMetricNameStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool IsMetricNameChar(char c) {
  return IsMetricNameStart(c) || (c >= '0' && c <= '9');
}

bool IsValidMetricName(const std::string& name) {
  if (name.empty() || !IsMetricNameStart(name[0])) return false;
  for (char c : name) {
    if (!IsMetricNameChar(c)) return false;
  }
  return true;
}

/// One sample line decomposed: family name, ordered labels, numeric value.
struct PromSample {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0;
};

const std::string* LabelValue(const PromSample& sample,
                              const std::string& key) {
  for (const auto& [k, v] : sample.labels) {
    if (k == key) return &v;
  }
  return nullptr;
}

/// Parses `name{key="value",...} number`. Returns false (with *why set) on
/// any malformation: bad name charset, unquoted or badly escaped label
/// values, labels out of lexicographic order, trailing garbage.
bool ParsePromSample(const std::string& line, PromSample* sample,
                     std::string* why) {
  std::size_t pos = 0;
  while (pos < line.size() && IsMetricNameChar(line[pos])) ++pos;
  sample->name = line.substr(0, pos);
  if (!IsValidMetricName(sample->name)) {
    *why = "invalid metric name";
    return false;
  }
  if (pos < line.size() && line[pos] == '{') {
    ++pos;
    while (pos < line.size() && line[pos] != '}') {
      std::size_t key_start = pos;
      while (pos < line.size() && IsMetricNameChar(line[pos])) ++pos;
      const std::string key = line.substr(key_start, pos - key_start);
      if (key.empty() || !IsValidMetricName(key)) {
        *why = "invalid label name";
        return false;
      }
      if (pos >= line.size() || line[pos] != '=') {
        *why = "label missing '='";
        return false;
      }
      ++pos;
      if (pos >= line.size() || line[pos] != '"') {
        *why = "label value is not quoted";
        return false;
      }
      ++pos;
      std::string value;
      while (pos < line.size() && line[pos] != '"') {
        char c = line[pos++];
        if (c == '\\') {
          if (pos >= line.size()) {
            *why = "bad escape in label value";
            return false;
          }
          const char e = line[pos++];
          if (e == '\\' || e == '"') {
            c = e;
          } else if (e == 'n') {
            c = '\n';
          } else {
            *why = "bad escape in label value";
            return false;
          }
        }
        value.push_back(c);
      }
      if (pos >= line.size()) {
        *why = "unterminated label value";
        return false;
      }
      ++pos;  // closing quote
      if (!sample->labels.empty() && key <= sample->labels.back().first) {
        *why = "labels out of order";
        return false;
      }
      sample->labels.emplace_back(key, std::move(value));
      if (pos < line.size() && line[pos] == ',') {
        ++pos;
        continue;
      }
    }
    if (pos >= line.size() || line[pos] != '}') {
      *why = "unterminated label set";
      return false;
    }
    ++pos;
  }
  if (pos >= line.size() || line[pos] != ' ') {
    *why = "sample missing value";
    return false;
  }
  ++pos;
  const std::string text = line.substr(pos);
  if (text == "+Inf") {
    sample->value = 1e308;
    return true;
  }
  char* end = nullptr;
  sample->value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    *why = "sample value is not a number";
    return false;
  }
  return true;
}

/// One (family, label-set) series being accumulated while scanning the
/// file. Histogram buckets and summary quantiles restart per label set (the
/// federated exporter emits one run per node), so the ordering invariants
/// are tracked per set.
struct PromSeries {
  // histogram: cumulative bucket counts in emission order (+Inf last);
  // summary: quantile -> value in emission order.
  std::vector<std::pair<double, double>> series;
  bool saw_inf_bucket = false;
  double count = -1;  // _count sample, once seen
};

/// One metric family being accumulated while scanning the file.
struct PromFamily {
  std::string type;
  std::size_t declared_line = 0;
  /// Keyed by the label signature minus the le/quantile label.
  std::map<std::string, PromSeries> series;
  bool saw_samples = false;
};

/// The label signature identifying one series of a family: every label
/// except the histogram/summary positional one.
std::string SeriesKey(const PromSample& sample) {
  std::string key;
  for (const auto& [k, v] : sample.labels) {
    if (k == "le" || k == "quantile") continue;
    key += k + "=" + v + ",";
  }
  return key;
}

/// Strips a histogram/summary suffix, returning the owning family name if
/// `families` declares one.
const std::string* FamilyOf(
    const std::map<std::string, PromFamily>& families, const std::string& name,
    std::string* suffix) {
  static const char* kSuffixes[] = {"_bucket", "_sum", "_count"};
  const auto it = families.find(name);
  if (it != families.end()) {
    suffix->clear();
    return &it->first;
  }
  for (const char* s : kSuffixes) {
    const std::size_t len = std::strlen(s);
    if (name.size() > len &&
        name.compare(name.size() - len, len, s) == 0) {
      const std::string base = name.substr(0, name.size() - len);
      const auto base_it = families.find(base);
      if (base_it != families.end()) {
        *suffix = s;
        return &base_it->first;
      }
    }
  }
  return nullptr;
}

/// Validates a Prometheus text exposition file line by line, then checks
/// each family's invariants: histogram buckets cumulative with a +Inf bucket
/// equal to _count, summary quantiles in [0, 1] with non-decreasing values.
int CheckProm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::map<std::string, PromFamily> families;
  std::string line;
  std::size_t line_no = 0;
  std::size_t samples = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream header(line);
      std::string hash, keyword, name, type;
      header >> hash >> keyword >> name >> type;
      if (keyword == "HELP") continue;
      if (keyword != "TYPE") {
        return ComplainLine(line_no, "comment is neither # TYPE nor # HELP");
      }
      if (!IsValidMetricName(name)) {
        return ComplainLine(line_no, "TYPE declares an invalid metric name");
      }
      if (type != "counter" && type != "gauge" && type != "histogram" &&
          type != "summary") {
        return ComplainLine(line_no, "TYPE kind is not "
                                     "counter|gauge|histogram|summary");
      }
      if (families.count(name) != 0) {
        return ComplainLine(line_no, "duplicate TYPE declaration");
      }
      PromFamily family;
      family.type = type;
      family.declared_line = line_no;
      families.emplace(name, std::move(family));
      continue;
    }
    PromSample sample;
    std::string why;
    if (!ParsePromSample(line, &sample, &why)) {
      return ComplainLine(line_no, why.c_str());
    }
    ++samples;
    std::string suffix;
    const std::string* owner = FamilyOf(families, sample.name, &suffix);
    if (owner == nullptr) {
      return ComplainLine(line_no, "sample has no preceding TYPE family");
    }
    PromFamily& family = families[*owner];
    family.saw_samples = true;
    if (family.type == "counter" || family.type == "gauge") {
      if (!suffix.empty()) {
        return ComplainLine(line_no, "scalar family has a suffixed sample");
      }
      // Labels on scalar families are fine (the federated exporter labels
      // every sample with node="N"); the parser already validated their
      // charset, quoting, and ordering.
      if (family.type == "counter" && sample.value < 0) {
        return ComplainLine(line_no, "counter sample is negative");
      }
    } else if (family.type == "histogram") {
      PromSeries& series = family.series[SeriesKey(sample)];
      if (suffix == "_bucket") {
        const std::string* le = LabelValue(sample, "le");
        if (le == nullptr) {
          return ComplainLine(line_no, "histogram bucket missing le label");
        }
        const double bound =
            *le == "+Inf" ? 1e308 : std::strtod(le->c_str(), nullptr);
        if (!series.series.empty() &&
            (bound <= series.series.back().first ||
             sample.value < series.series.back().second)) {
          return ComplainLine(line_no,
                              "histogram buckets not cumulative/ordered");
        }
        series.series.emplace_back(bound, sample.value);
        if (*le == "+Inf") series.saw_inf_bucket = true;
      } else if (suffix == "_count") {
        series.count = sample.value;
      } else if (suffix != "_sum") {
        return ComplainLine(line_no, "unsuffixed sample on a histogram");
      }
    } else {  // summary
      PromSeries& series = family.series[SeriesKey(sample)];
      if (suffix.empty()) {
        const std::string* quantile = LabelValue(sample, "quantile");
        if (quantile == nullptr) {
          return ComplainLine(line_no, "summary sample missing quantile");
        }
        const double q = std::strtod(quantile->c_str(), nullptr);
        if (q < 0 || q > 1) {
          return ComplainLine(line_no, "summary quantile outside [0, 1]");
        }
        if (!series.series.empty() &&
            (q <= series.series.back().first ||
             sample.value < series.series.back().second)) {
          return ComplainLine(line_no,
                              "summary quantiles not ordered/monotone");
        }
        series.series.emplace_back(q, sample.value);
      } else if (suffix == "_count") {
        series.count = sample.value;
      } else if (suffix != "_sum") {
        return ComplainLine(line_no, "unexpected suffix on a summary");
      }
    }
  }
  for (const auto& [name, family] : families) {
    if (!family.saw_samples) {
      return ComplainLine(family.declared_line, "TYPE family has no samples");
    }
    for (const auto& [key, series] : family.series) {
      if (family.type == "histogram") {
        if (!series.saw_inf_bucket) {
          return ComplainLine(family.declared_line,
                              "histogram missing +Inf bucket");
        }
        if (series.count >= 0 && !series.series.empty() &&
            series.series.back().second != series.count) {
          return ComplainLine(family.declared_line,
                              "+Inf bucket != histogram count");
        }
      }
      if (family.type == "summary" && series.series.empty()) {
        return ComplainLine(family.declared_line,
                            "summary has no quantile lines");
      }
    }
  }
  std::printf("prom ok: %zu families, %zu samples\n", families.size(),
              samples);
  return 0;
}

// ---------------------------------------------------------------------------
// Flight-recorder dump
// ---------------------------------------------------------------------------

/// Reduces a flight-dump span entry ({"name","tid","ts","dur"}) to the
/// shared ServeEvent shape, treating dur == 0 as an instant.
bool ReduceFlightSpan(const Json& node, ServeEvent* out) {
  if (!node.Is(Json::Kind::kObject)) return false;
  const Json* name = node.Get("name");
  const Json* ts = node.Get("ts");
  const Json* dur = node.Get("dur");
  if (!IsString(name) || !IsNumber(ts) || !IsNumber(dur) ||
      !IsNumber(node.Get("tid")) || dur->number < 0) {
    return false;
  }
  out->name = name->string;
  out->ts = ts->number;
  out->dur = dur->number;
  out->is_span = dur->number > 0;
  return true;
}

int ComplainViolator(const char* what, double id) {
  std::fprintf(stderr, "schema error: %s (violator id %.0f)\n", what, id);
  return 1;
}

/// Validates one violator's span tree: exactly one serve.request root with
/// everything inside it. Served (status ok) violators must carry the full
/// journey — queue_wait, batch_form, shard_fanout, at least one
/// shard_search, merge; terminal ones a terminal instant and no kernel
/// stages.
int CheckViolatorSpans(const Json& spans, const std::string& status,
                       double id) {
  const ServeEvent* root = nullptr;
  std::vector<ServeEvent> events;
  events.reserve(spans.array.size());
  for (const JsonPtr& node : spans.array) {
    ServeEvent event;
    if (!ReduceFlightSpan(*node, &event)) {
      return Complain("flight span is not {name, tid, ts, dur}");
    }
    events.push_back(std::move(event));
  }
  std::map<std::string, std::size_t> seen;
  for (const ServeEvent& event : events) {
    ++seen[event.name];
    if (event.name == "serve.request") root = &event;
  }
  if (seen["serve.request"] != 1) {
    return ComplainViolator("violator needs exactly one serve.request root", id);
  }
  const double begin = root->ts - kContainEps;
  const double end = root->ts + root->dur + kContainEps;
  for (const ServeEvent& event : events) {
    if (&event == root) continue;
    if (event.ts < begin || event.ts + event.dur > end) {
      return ComplainViolator("flight span escapes its serve.request root", id);
    }
  }
  const bool kernel_stage = seen.count("serve.shard_fanout") != 0 ||
                            seen.count("serve.shard_search") != 0 ||
                            seen.count("serve.merge") != 0;
  if (status == "ok") {
    for (const char* stage : {"serve.queue_wait", "serve.batch_form",
                              "serve.shard_fanout", "serve.shard_search",
                              "serve.merge"}) {
      if (seen.count(stage) == 0) {
        return ComplainViolator(
            (std::string("served violator missing ") + stage).c_str(), id);
      }
    }
  } else {
    if (kernel_stage) {
      return ComplainViolator(
          "terminal violator carries fan-out/shard/merge spans", id);
    }
    if (seen.count("serve.rejected") == 0 &&
        seen.count("serve.expired") == 0 &&
        seen.count("serve.shutdown") == 0) {
      return ComplainViolator("terminal violator missing terminal instant", id);
    }
  }
  return 0;
}

/// Flight-recorder dump: options + non-negative counters + violator records
/// + persisted batch contexts. Served violators must carry hardness signals
/// and a complete span tree (the whole point of tail-based recording).
int CheckFlight(const Json& root) {
  if (!root.Is(Json::Kind::kObject)) return Complain("root is not an object");
  const Json* options = root.Get("options");
  if (options == nullptr || !options->Is(Json::Kind::kObject)) {
    return Complain("missing options object");
  }
  const Json* counters = root.Get("counters");
  if (counters == nullptr || !counters->Is(Json::Kind::kObject)) {
    return Complain("missing counters object");
  }
  for (const char* key : {"recorded", "batches", "violators", "persisted",
                          "overwritten", "batches_overwritten",
                          "persisted_dropped"}) {
    const Json* value = counters->Get(key);
    if (!IsNumber(value) || value->number < 0) {
      return Complain(
          (std::string("counters missing non-negative ") + key).c_str());
    }
  }
  const Json* violators = root.Get("violators");
  if (violators == nullptr || !violators->Is(Json::Kind::kArray)) {
    return Complain("missing violators array");
  }
  std::size_t served_violators = 0;
  for (const JsonPtr& record : violators->array) {
    if (!record->Is(Json::Kind::kObject)) {
      return Complain("violator is not an object");
    }
    const Json* status = record->Get("status");
    if (!IsString(status)) return Complain("violator missing status");
    for (const char* key : {"id", "latency_us", "queue_wait_us",
                            "deadline_us", "batch_seq", "batch_size"}) {
      if (!IsNumber(record->Get(key))) {
        return Complain((std::string("violator missing ") + key).c_str());
      }
    }
    const Json* spans = record->Get("spans");
    if (spans == nullptr || !spans->Is(Json::Kind::kArray) ||
        spans->array.empty()) {
      return Complain("violator missing non-empty spans array");
    }
    if (status->string == "ok") {
      ++served_violators;
      const Json* hardness = record->Get("hardness");
      if (hardness == nullptr || !hardness->Is(Json::Kind::kObject)) {
        return Complain("served violator missing hardness object");
      }
      for (const char* key : {"entry_distance", "early_fanout", "visited",
                              "budget", "visited_budget_ratio"}) {
        if (!IsNumber(hardness->Get(key))) {
          return Complain(
              (std::string("hardness missing ") + key).c_str());
        }
      }
    }
    const int rc = CheckViolatorSpans(*spans, status->string,
                                      record->Get("id")->number);
    if (rc != 0) return rc;
  }
  const Json* batches = root.Get("batches");
  if (batches == nullptr || !batches->Is(Json::Kind::kArray)) {
    return Complain("missing batches array");
  }
  for (const JsonPtr& batch : batches->array) {
    if (!batch->Is(Json::Kind::kObject) || !IsNumber(batch->Get("seq")) ||
        !IsNumber(batch->Get("size")) || batch->Get("spans") == nullptr ||
        !batch->Get("spans")->Is(Json::Kind::kArray)) {
      return Complain("batch context is not {seq, size, spans}");
    }
  }
  std::printf("flight ok: %zu violators (%zu served), %zu batch contexts\n",
              violators->array.size(), served_violators,
              batches->array.size());
  return 0;
}

// ---------------------------------------------------------------------------
// Federated windows and alert events (JSONL artifacts)
// ---------------------------------------------------------------------------

/// Parses a JSONL file: one JSON object per non-empty line. Returns false
/// (with *why set) on the first malformed line.
bool ReadJsonl(const std::string& path, std::vector<JsonPtr>* lines,
               std::string* why) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *why = "cannot open " + path;
    return false;
  }
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    ganns::tools::Parser parser(line);
    JsonPtr node = parser.Parse();
    if (node == nullptr) {
      *why = "line " + std::to_string(line_no) + ": " + parser.error();
      return false;
    }
    lines->push_back(std::move(node));
  }
  return true;
}

int ComplainWindow(std::size_t index, const char* what) {
  std::fprintf(stderr, "schema error: record %zu: %s\n", index, what);
  return 1;
}

/// Federated window stream (`cluster-bench --federation-out`): every line a
/// window with a monotone seq, non-decreasing simulated time, per-node
/// sections (state, scrape_ok, counters/gauges/hdr), a cluster roll-up, and
/// the derived alert inputs.
int CheckFederation(const std::string& path) {
  std::vector<JsonPtr> windows;
  std::string why;
  if (!ReadJsonl(path, &windows, &why)) {
    return Complain(why.c_str());
  }
  if (windows.empty()) return Complain("no federated windows");
  double prev_seq = -1;
  double prev_t = -1;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const Json& window = *windows[i];
    if (!window.Is(Json::Kind::kObject)) {
      return ComplainWindow(i, "window is not an object");
    }
    for (const char* key : {"seq", "t_us", "interval_us", "scrape_bytes"}) {
      const Json* value = window.Get(key);
      if (!IsNumber(value) || value->number < 0) {
        return ComplainWindow(
            i, (std::string("window missing non-negative ") + key).c_str());
      }
    }
    if (window.Get("seq")->number <= prev_seq) {
      return ComplainWindow(i, "seq not strictly increasing");
    }
    prev_seq = window.Get("seq")->number;
    if (window.Get("t_us")->number < prev_t) {
      return ComplainWindow(i, "t_us decreased");
    }
    prev_t = window.Get("t_us")->number;

    const Json* nodes = window.Get("nodes");
    if (nodes == nullptr || !nodes->Is(Json::Kind::kArray) ||
        nodes->array.empty()) {
      return ComplainWindow(i, "missing non-empty nodes array");
    }
    for (const JsonPtr& node : nodes->array) {
      if (!node->Is(Json::Kind::kObject) || !IsNumber(node->Get("node"))) {
        return ComplainWindow(i, "node window is not {node, ...}");
      }
      const Json* state = node->Get("state");
      if (!IsString(state) ||
          (state->string != "up" && state->string != "suspect" &&
           state->string != "down")) {
        return ComplainWindow(i, "node state is not up/suspect/down");
      }
      const Json* scrape_ok = node->Get("scrape_ok");
      if (scrape_ok == nullptr || !scrape_ok->Is(Json::Kind::kBool)) {
        return ComplainWindow(i, "node missing scrape_ok bool");
      }
      for (const char* section : {"counters", "gauges", "hdr"}) {
        const Json* object = node->Get(section);
        if (object == nullptr || !object->Is(Json::Kind::kObject)) {
          return ComplainWindow(
              i, (std::string("node missing ") + section + " object").c_str());
        }
      }
      // A failed scrape answers nothing: its window must carry zero deltas.
      if (!scrape_ok->boolean) {
        for (const auto& [name, delta] : node->Get("counters")->object) {
          if (!IsNumber(delta.get()) || delta->number != 0) {
            return ComplainWindow(i, "failed scrape carries counter deltas");
          }
        }
      }
      const Json* hdr = node->Get("hdr");
      for (const auto& [name, entry] : hdr->object) {
        if (!entry->Is(Json::Kind::kObject) ||
            !IsNumber(entry->Get("count")) || !IsNumber(entry->Get("p50")) ||
            !IsNumber(entry->Get("p99")) || !IsNumber(entry->Get("max")) ||
            !IsNumber(entry->Get("total_count"))) {
          return ComplainWindow(
              i, "hdr window is not {count, p50, p99, max, total_count}");
        }
        if (entry->Get("count")->number > 0 &&
            (entry->Get("p50")->number > entry->Get("p99")->number ||
             entry->Get("p99")->number > entry->Get("max")->number)) {
          return ComplainWindow(i, "hdr window percentiles not monotone");
        }
      }
    }

    const Json* cluster = window.Get("cluster");
    if (cluster == nullptr || !cluster->Is(Json::Kind::kObject) ||
        cluster->Get("counters") == nullptr ||
        !cluster->Get("counters")->Is(Json::Kind::kObject) ||
        cluster->Get("hdr") == nullptr ||
        !cluster->Get("hdr")->Is(Json::Kind::kObject)) {
      return ComplainWindow(i, "missing cluster {counters, hdr} roll-up");
    }
    const Json* derived = window.Get("derived");
    if (derived == nullptr || !derived->Is(Json::Kind::kObject) ||
        !IsNumber(derived->Get("slo_headroom")) ||
        !IsNumber(derived->Get("slo_samples")) ||
        !IsNumber(derived->Get("queue_saturation"))) {
      return ComplainWindow(
          i, "missing derived {slo_headroom, slo_samples, queue_saturation}");
    }
  }
  std::printf("federation ok: %zu windows, %zu nodes\n", windows.size(),
              windows.front()->Get("nodes")->array.size());
  return 0;
}

/// Alert event log (`cluster-bench --alerts-out`): every line a firing or
/// resolved transition with non-decreasing time; per (rule, node) scope the
/// transitions must alternate starting with a firing. Extra CLI args name
/// rules that must both fire and resolve somewhere in the log — the drill
/// gate's expected sequence.
int CheckAlerts(const std::string& path,
                const std::vector<std::string>& must_fire_and_resolve) {
  std::vector<JsonPtr> events;
  std::string why;
  if (!ReadJsonl(path, &events, &why)) {
    return Complain(why.c_str());
  }
  std::map<std::string, bool> firing;     // (rule, node) -> currently firing
  std::map<std::string, int> fired;       // rule -> firings seen
  std::map<std::string, int> resolved;    // rule -> resolutions seen
  double prev_t = -1;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& event = *events[i];
    if (!event.Is(Json::Kind::kObject)) {
      return ComplainWindow(i, "alert event is not an object");
    }
    for (const char* key : {"t_us", "seq", "value", "threshold"}) {
      if (!IsNumber(event.Get(key))) {
        return ComplainWindow(
            i, (std::string("alert event missing ") + key).c_str());
      }
    }
    const Json* rule = event.Get("rule");
    const Json* node = event.Get("node");
    const Json* state = event.Get("state");
    if (!IsString(rule) || rule->string.empty()) {
      return ComplainWindow(i, "alert event missing rule");
    }
    if (!IsString(node)) return ComplainWindow(i, "alert event missing node");
    if (!IsString(state) ||
        (state->string != "firing" && state->string != "resolved")) {
      return ComplainWindow(i, "alert state is not firing/resolved");
    }
    if (event.Get("t_us")->number < prev_t) {
      return ComplainWindow(i, "alert t_us decreased");
    }
    prev_t = event.Get("t_us")->number;
    const std::string scope = rule->string + "\x1f" + node->string;
    const bool now = state->string == "firing";
    const auto it = firing.find(scope);
    const bool was = it != firing.end() && it->second;
    if (now == was) {
      return ComplainWindow(
          i, now ? "firing event for an already-firing scope"
                 : "resolved event for a scope that was not firing");
    }
    firing[scope] = now;
    ++(now ? fired : resolved)[rule->string];
  }
  for (const std::string& rule : must_fire_and_resolve) {
    if (fired[rule] == 0) {
      std::fprintf(stderr, "schema error: expected rule '%s' to fire\n",
                   rule.c_str());
      return 1;
    }
    if (resolved[rule] == 0) {
      std::fprintf(stderr, "schema error: expected rule '%s' to resolve\n",
                   rule.c_str());
      return 1;
    }
  }
  std::printf("alerts ok: %zu transitions, %zu rules fired\n", events.size(),
              fired.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // "--prom"/"--flight" accepted as aliases so callers can spell the mode
  // like a flag.
  const char* mode = argc >= 2 ? argv[1] : "";
  if (std::strncmp(mode, "--", 2) == 0) mode += 2;
  const bool is_alerts = std::strcmp(mode, "alerts") == 0;
  // `alerts` takes optional trailing rule names that must fire and resolve;
  // every other mode is exactly <mode> <file>.
  if (argc < 3 || (argc != 3 && !is_alerts) ||
      (!is_alerts && std::strcmp(mode, "trace") != 0 &&
       std::strcmp(mode, "metrics") != 0 && std::strcmp(mode, "stats") != 0 &&
       std::strcmp(mode, "bench") != 0 && std::strcmp(mode, "prom") != 0 &&
       std::strcmp(mode, "flight") != 0 &&
       std::strcmp(mode, "cluster") != 0 &&
       std::strcmp(mode, "federation") != 0)) {
    std::fprintf(stderr,
                 "usage: schema_check "
                 "<trace|metrics|stats|bench|prom|flight|cluster|federation> "
                 "<file>\n"
                 "       schema_check alerts <alerts.jsonl> "
                 "[rule-that-must-fire-and-resolve ...]\n");
    return 2;
  }
  if (std::strcmp(mode, "prom") == 0) return CheckProm(argv[2]);
  if (std::strcmp(mode, "federation") == 0) return CheckFederation(argv[2]);
  if (is_alerts) {
    std::vector<std::string> expected;
    for (int i = 3; i < argc; ++i) expected.emplace_back(argv[i]);
    return CheckAlerts(argv[2], expected);
  }
  std::string error;
  const JsonPtr root = ganns::tools::ParseJsonFile(argv[2], &error);
  if (root == nullptr) {
    std::fprintf(stderr, "JSON parse error: %s\n", error.c_str());
    return 1;
  }
  if (std::strcmp(mode, "trace") == 0) return CheckTrace(*root);
  if (std::strcmp(mode, "bench") == 0) return CheckBench(*root);
  if (std::strcmp(mode, "flight") == 0) return CheckFlight(*root);
  if (std::strcmp(mode, "cluster") == 0) return CheckCluster(*root);
  return CheckMetrics(*root, std::strcmp(mode, "stats") == 0);
}
