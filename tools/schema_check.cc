// schema_check — validates the observability JSON artifacts:
//
//   schema_check trace   <trace.json>     Chrome/Perfetto trace_event file
//   schema_check metrics <metrics.json>   MetricsRegistry export
//   schema_check stats   <stats.json>     serving stats export (registry
//                                         JSON whose hdr section must hold
//                                         coherent percentile summaries)
//   schema_check bench   <BENCH_*.json>   bench artifact: provenance block
//                                         plus a results/quantized row array
//                                         (quantized rows are field-checked)
//
// Exit code 0 iff the file parses as JSON and matches the expected schema.
// The JSON DOM/parser lives in tools/json_reader.h (shared with bench_diff
// and `ganns stat`). Used by ctest to gate the `ganns profile` pipeline and
// the serving trace/stats artifacts.
//
// Beyond per-event field checks, `trace` validates the serving process
// (pid 2): every request track (tid >= 1024) must carry exactly one
// serve.request root span, every other event on the track must fall inside
// the root, and tracks ending in a terminal instant (serve.rejected /
// serve.expired / serve.shutdown) must not contain fan-out, shard, or merge
// spans — the request never reached a kernel.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "tools/json_reader.h"

namespace {

using ganns::tools::Json;
using ganns::tools::JsonPtr;

// Mirrors the track layout in src/obs/trace.h.
constexpr double kServePid = 2;
constexpr double kServeRequestTrackBase = 1024;
// Wall timestamps are %.3f microseconds; allow one printed quantum of slop
// at containment boundaries.
constexpr double kContainEps = 0.01;

int Complain(const char* what) {
  std::fprintf(stderr, "schema error: %s\n", what);
  return 1;
}

int ComplainTrack(const char* what, double tid) {
  std::fprintf(stderr, "schema error: %s (serving track %.0f)\n", what, tid);
  return 1;
}

bool IsNumber(const Json* node) {
  return node != nullptr && node->Is(Json::Kind::kNumber);
}

bool IsString(const Json* node) {
  return node != nullptr && node->Is(Json::Kind::kString);
}

/// One serving-pid event reduced to what the shape check needs.
struct ServeEvent {
  std::string name;
  bool is_span = false;  // X (span) vs i (instant)
  double ts = 0;
  double dur = 0;
};

/// Validates the per-request span trees on the serving process. Returns 0
/// and reports the number of complete trees on success.
int CheckServingShape(
    const std::map<double, std::vector<ServeEvent>>& tracks) {
  std::size_t trees = 0;
  for (const auto& [tid, events] : tracks) {
    const ServeEvent* root = nullptr;
    bool terminal = false;
    bool kernel_stage = false;
    for (const ServeEvent& event : events) {
      if (event.name == "serve.request") {
        if (!event.is_span) {
          return ComplainTrack("serve.request is not a span", tid);
        }
        if (root != nullptr) {
          return ComplainTrack("more than one serve.request root", tid);
        }
        root = &event;
      } else if (event.name == "serve.rejected" ||
                 event.name == "serve.expired" ||
                 event.name == "serve.shutdown") {
        terminal = true;
      } else if (event.name == "serve.shard_fanout" ||
                 event.name == "serve.shard_search" ||
                 event.name == "serve.merge") {
        kernel_stage = true;
      }
    }
    if (root == nullptr) {
      return ComplainTrack("request track has no serve.request root", tid);
    }
    if (terminal && kernel_stage) {
      return ComplainTrack(
          "terminal request carries fan-out/shard/merge spans", tid);
    }
    const double begin = root->ts - kContainEps;
    const double end = root->ts + root->dur + kContainEps;
    for (const ServeEvent& event : events) {
      if (&event == root) continue;
      if (event.ts < begin || event.ts + event.dur > end) {
        return ComplainTrack("event escapes its serve.request root", tid);
      }
    }
    ++trees;
  }
  if (trees > 0) {
    std::printf("serving ok: %zu request span trees\n", trees);
  }
  return 0;
}

/// Chrome trace_event format: {"traceEvents": [...]} where every event has
/// name/ph/pid/tid/ts; "X" events additionally carry a non-negative dur;
/// "M" (metadata) events carry args.name. Serving-pid request tracks are
/// additionally shape-checked (see CheckServingShape).
int CheckTrace(const Json& root) {
  if (!root.Is(Json::Kind::kObject)) return Complain("root is not an object");
  const Json* events = root.Get("traceEvents");
  if (events == nullptr || !events->Is(Json::Kind::kArray)) {
    return Complain("missing traceEvents array");
  }
  std::size_t spans = 0;
  std::map<double, std::vector<ServeEvent>> serve_tracks;
  for (const JsonPtr& event : events->array) {
    if (!event->Is(Json::Kind::kObject)) {
      return Complain("event is not an object");
    }
    const Json* name = event->Get("name");
    if (!IsString(name)) return Complain("event missing name");
    const Json* ph = event->Get("ph");
    if (!IsString(ph)) return Complain("event missing ph");
    const Json* pid = event->Get("pid");
    const Json* tid = event->Get("tid");
    if (!IsNumber(pid)) return Complain("event missing pid");
    if (!IsNumber(tid)) return Complain("event missing tid");
    if (ph->string == "X") {
      if (!IsNumber(event->Get("ts"))) return Complain("X event missing ts");
      const Json* dur = event->Get("dur");
      if (!IsNumber(dur) || dur->number < 0) {
        return Complain("X event missing non-negative dur");
      }
      ++spans;
    } else if (ph->string == "i") {
      if (!IsNumber(event->Get("ts"))) return Complain("i event missing ts");
    } else if (ph->string == "M") {
      const Json* args = event->Get("args");
      if (args == nullptr || !args->Is(Json::Kind::kObject) ||
          !IsString(args->Get("name"))) {
        return Complain("M event missing args.name");
      }
      continue;
    } else {
      return Complain("unknown event phase (expect X/i/M)");
    }
    if (pid->number == kServePid && tid->number >= kServeRequestTrackBase) {
      ServeEvent reduced;
      reduced.name = name->string;
      reduced.is_span = ph->string == "X";
      reduced.ts = event->Get("ts")->number;
      reduced.dur = reduced.is_span ? event->Get("dur")->number : 0;
      serve_tracks[tid->number].push_back(std::move(reduced));
    }
  }
  const int serving = CheckServingShape(serve_tracks);
  if (serving != 0) return serving;
  std::printf("trace ok: %zu events (%zu spans)\n", events->array.size(),
              spans);
  return 0;
}

/// One hdr summary: count/sum/min/max/mean plus monotone percentiles and
/// exemplars carrying {id, value} links back to request traces.
int CheckHdrEntry(const std::string& name, const Json& hdr) {
  const std::string where = "hdr." + name;
  if (!hdr.Is(Json::Kind::kObject)) {
    return Complain((where + " is not an object").c_str());
  }
  for (const char* key :
       {"count", "sum", "min", "max", "mean", "p50", "p90", "p95", "p99",
        "p999"}) {
    if (!IsNumber(hdr.Get(key))) {
      return Complain((where + " missing " + key).c_str());
    }
  }
  if (hdr.Get("count")->number > 0) {
    const double quantiles[] = {
        hdr.Get("min")->number, hdr.Get("p50")->number,
        hdr.Get("p90")->number, hdr.Get("p95")->number,
        hdr.Get("p99")->number, hdr.Get("p999")->number,
        hdr.Get("max")->number};
    for (std::size_t i = 1; i < std::size(quantiles); ++i) {
      if (quantiles[i] < quantiles[i - 1]) {
        return Complain((where + " percentiles are not monotone").c_str());
      }
    }
  }
  const Json* exemplars = hdr.Get("exemplars");
  if (exemplars == nullptr || !exemplars->Is(Json::Kind::kArray)) {
    return Complain((where + " missing exemplars array").c_str());
  }
  for (const JsonPtr& exemplar : exemplars->array) {
    if (!exemplar->Is(Json::Kind::kObject) ||
        !IsNumber(exemplar->Get("id")) || !IsNumber(exemplar->Get("value"))) {
      return Complain((where + " exemplar is not {id, value}").c_str());
    }
  }
  return 0;
}

/// MetricsRegistry export: {"counters":{name:int}, "gauges":{name:number},
/// "histograms":{name:{count,sum,max,mean,bounds[],buckets[]}}} with
/// len(buckets) == len(bounds) + 1 and count == sum of buckets. When
/// require_hdr is set (stats mode) the "hdr" object must exist, be
/// non-empty, and every entry must pass CheckHdrEntry.
int CheckMetrics(const Json& root, bool require_hdr) {
  if (!root.Is(Json::Kind::kObject)) return Complain("root is not an object");
  const Json* counters = root.Get("counters");
  const Json* gauges = root.Get("gauges");
  const Json* histograms = root.Get("histograms");
  if (counters == nullptr || !counters->Is(Json::Kind::kObject)) {
    return Complain("missing counters object");
  }
  if (gauges == nullptr || !gauges->Is(Json::Kind::kObject)) {
    return Complain("missing gauges object");
  }
  if (histograms == nullptr || !histograms->Is(Json::Kind::kObject)) {
    return Complain("missing histograms object");
  }
  for (const auto& [name, value] : counters->object) {
    if (!IsNumber(value.get()) || value->number < 0) {
      return Complain("counter is not a non-negative number");
    }
  }
  for (const auto& [name, value] : gauges->object) {
    if (!IsNumber(value.get())) return Complain("gauge is not a number");
  }
  for (const auto& [name, hist] : histograms->object) {
    if (!hist->Is(Json::Kind::kObject)) {
      return Complain("histogram is not an object");
    }
    for (const char* key : {"count", "sum", "max"}) {
      if (!IsNumber(hist->Get(key))) {
        return Complain("histogram missing count/sum/max");
      }
    }
    const Json* bounds = hist->Get("bounds");
    const Json* buckets = hist->Get("buckets");
    if (bounds == nullptr || !bounds->Is(Json::Kind::kArray) ||
        buckets == nullptr || !buckets->Is(Json::Kind::kArray)) {
      return Complain("histogram missing bounds/buckets arrays");
    }
    if (buckets->array.size() != bounds->array.size() + 1) {
      return Complain("histogram buckets size != bounds size + 1");
    }
    double bucket_total = 0;
    for (const JsonPtr& b : buckets->array) {
      if (!IsNumber(b.get())) return Complain("bucket is not a number");
      bucket_total += b->number;
    }
    if (bucket_total != hist->Get("count")->number) {
      return Complain("histogram count != sum of buckets");
    }
  }
  const Json* hdr = root.Get("hdr");
  std::size_t hdr_count = 0;
  if (require_hdr &&
      (hdr == nullptr || !hdr->Is(Json::Kind::kObject) ||
       hdr->object.empty())) {
    return Complain("stats file missing non-empty hdr object");
  }
  if (hdr != nullptr && hdr->Is(Json::Kind::kObject)) {
    for (const auto& [name, entry] : hdr->object) {
      const int rc = CheckHdrEntry(name, *entry);
      if (rc != 0) return rc;
      ++hdr_count;
    }
  }
  std::printf("metrics ok: %zu counters, %zu gauges, %zu histograms, %zu hdr\n",
              counters->object.size(), gauges->object.size(),
              histograms->object.size(), hdr_count);
  return 0;
}

/// BENCH_*.json artifact: a provenance object (git sha/date/host/flags
/// strings, see bench::ProvenanceJson) plus at least one row array named
/// "results" or "quantized". Rows must be objects; "quantized" rows (the
/// compressed-search table) are field-checked: precision string, numeric
/// rerank_factor / sim_qps / resident_bytes_per_vector, recall in [0, 1],
/// and a positive byte count — so bench_diff never gates on a malformed
/// artifact that happens to flatten to plausible paths.
int CheckBench(const Json& root) {
  if (!root.Is(Json::Kind::kObject)) return Complain("root is not an object");
  const Json* provenance = root.Get("provenance");
  if (provenance == nullptr || !provenance->Is(Json::Kind::kObject)) {
    return Complain("missing provenance object");
  }
  for (const auto& [key, value] : provenance->object) {
    if (!IsString(value.get())) {
      return Complain("provenance field is not a string");
    }
  }
  std::size_t rows = 0;
  std::size_t arrays = 0;
  for (const char* section : {"results", "quantized"}) {
    const Json* array = root.Get(section);
    if (array == nullptr) continue;
    if (!array->Is(Json::Kind::kArray)) {
      return Complain("row section is not an array");
    }
    if (array->array.empty()) return Complain("row section is empty");
    ++arrays;
    for (const JsonPtr& row : array->array) {
      if (!row->Is(Json::Kind::kObject)) {
        return Complain("bench row is not an object");
      }
      ++rows;
      if (std::strcmp(section, "quantized") != 0) continue;
      if (!IsString(row->Get("precision"))) {
        return Complain("quantized row missing precision string");
      }
      for (const char* key :
           {"rerank_factor", "recall", "sim_qps",
            "resident_bytes_per_vector"}) {
        if (!IsNumber(row->Get(key))) {
          return Complain(
              (std::string("quantized row missing ") + key).c_str());
        }
      }
      const double recall = row->Get("recall")->number;
      if (recall < 0 || recall > 1) {
        return Complain("quantized recall outside [0, 1]");
      }
      if (row->Get("resident_bytes_per_vector")->number <= 0) {
        return Complain("quantized resident bytes not positive");
      }
    }
  }
  if (arrays == 0) return Complain("missing results/quantized row array");
  std::printf("bench ok: %zu rows in %zu sections\n", rows, arrays);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3 || (std::strcmp(argv[1], "trace") != 0 &&
                    std::strcmp(argv[1], "metrics") != 0 &&
                    std::strcmp(argv[1], "stats") != 0 &&
                    std::strcmp(argv[1], "bench") != 0)) {
    std::fprintf(
        stderr,
        "usage: schema_check <trace|metrics|stats|bench> <file.json>\n");
    return 2;
  }
  std::string error;
  const JsonPtr root = ganns::tools::ParseJsonFile(argv[2], &error);
  if (root == nullptr) {
    std::fprintf(stderr, "JSON parse error: %s\n", error.c_str());
    return 1;
  }
  if (std::strcmp(argv[1], "trace") == 0) return CheckTrace(*root);
  if (std::strcmp(argv[1], "bench") == 0) return CheckBench(*root);
  return CheckMetrics(*root, std::strcmp(argv[1], "stats") == 0);
}
