// schema_check — validates the observability JSON artifacts:
//
//   schema_check trace   <trace.json>     Chrome/Perfetto trace_event file
//   schema_check metrics <metrics.json>   MetricsRegistry export
//
// Exit code 0 iff the file parses as JSON and matches the expected schema.
// The parser is a small recursive-descent JSON reader (no dependencies);
// it builds a DOM of variant nodes and the checkers walk it. Used by ctest
// to gate the `ganns profile` pipeline.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON DOM + parser.
// ---------------------------------------------------------------------------

struct Json;
using JsonPtr = std::unique_ptr<Json>;

struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonPtr> array;
  std::map<std::string, JsonPtr> object;

  bool Is(Kind k) const { return kind == k; }
  const Json* Get(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : it->second.get();
  }
};

class Parser {
 public:
  explicit Parser(std::string text) : text_(std::move(text)) {}

  JsonPtr Parse() {
    JsonPtr value = ParseValue();
    if (value == nullptr) return nullptr;
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return value;
  }

  const std::string& error() const { return error_; }

 private:
  JsonPtr Fail(const char* message) {
    if (error_.empty()) {
      std::ostringstream out;
      out << message << " at offset " << pos_;
      error_ = out.str();
    }
    return nullptr;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonPtr ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  JsonPtr ParseObject() {
    if (!Consume('{')) return Fail("expected '{'");
    auto node = std::make_unique<Json>();
    node->kind = Json::Kind::kObject;
    SkipSpace();
    if (Consume('}')) return node;
    for (;;) {
      JsonPtr key = ParseString();
      if (key == nullptr) return nullptr;
      if (!Consume(':')) return Fail("expected ':'");
      JsonPtr value = ParseValue();
      if (value == nullptr) return nullptr;
      node->object.emplace(std::move(key->string), std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return node;
      return Fail("expected ',' or '}'");
    }
  }

  JsonPtr ParseArray() {
    if (!Consume('[')) return Fail("expected '['");
    auto node = std::make_unique<Json>();
    node->kind = Json::Kind::kArray;
    SkipSpace();
    if (Consume(']')) return node;
    for (;;) {
      JsonPtr value = ParseValue();
      if (value == nullptr) return nullptr;
      node->array.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return node;
      return Fail("expected ',' or ']'");
    }
  }

  JsonPtr ParseString() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected string");
    }
    ++pos_;
    auto node = std::make_unique<Json>();
    node->kind = Json::Kind::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
            // Validated but not decoded — the checkers never compare
            // non-ASCII content.
            pos_ += 4;
            c = '?';
            break;
          }
          default:
            return Fail("bad escape");
        }
      }
      node->string.push_back(c);
    }
    if (pos_ >= text_.size()) return Fail("unterminated string");
    ++pos_;  // closing quote
    return node;
  }

  JsonPtr ParseBool() {
    auto node = std::make_unique<Json>();
    node->kind = Json::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      node->boolean = true;
      pos_ += 4;
      return node;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      node->boolean = false;
      pos_ += 5;
      return node;
    }
    return Fail("expected boolean");
  }

  JsonPtr ParseNull() {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return std::make_unique<Json>();
    }
    return Fail("expected null");
  }

  JsonPtr ParseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected value");
    auto node = std::make_unique<Json>();
    node->kind = Json::Kind::kNumber;
    node->number = std::strtod(text_.c_str() + start, nullptr);
    return node;
  }

  std::string text_;
  std::size_t pos_ = 0;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Schema checkers.
// ---------------------------------------------------------------------------

int Complain(const char* what) {
  std::fprintf(stderr, "schema error: %s\n", what);
  return 1;
}

bool IsNumber(const Json* node) {
  return node != nullptr && node->Is(Json::Kind::kNumber);
}

bool IsString(const Json* node) {
  return node != nullptr && node->Is(Json::Kind::kString);
}

/// Chrome trace_event format: {"traceEvents": [...]} where every event has
/// name/ph/pid/tid/ts; "X" events additionally carry a non-negative dur;
/// "M" (metadata) events carry args.name.
int CheckTrace(const Json& root) {
  if (!root.Is(Json::Kind::kObject)) return Complain("root is not an object");
  const Json* events = root.Get("traceEvents");
  if (events == nullptr || !events->Is(Json::Kind::kArray)) {
    return Complain("missing traceEvents array");
  }
  std::size_t spans = 0;
  for (const JsonPtr& event : events->array) {
    if (!event->Is(Json::Kind::kObject)) {
      return Complain("event is not an object");
    }
    if (!IsString(event->Get("name"))) return Complain("event missing name");
    const Json* ph = event->Get("ph");
    if (!IsString(ph)) return Complain("event missing ph");
    if (!IsNumber(event->Get("pid"))) return Complain("event missing pid");
    if (!IsNumber(event->Get("tid"))) return Complain("event missing tid");
    if (ph->string == "X") {
      if (!IsNumber(event->Get("ts"))) return Complain("X event missing ts");
      const Json* dur = event->Get("dur");
      if (!IsNumber(dur) || dur->number < 0) {
        return Complain("X event missing non-negative dur");
      }
      ++spans;
    } else if (ph->string == "i") {
      if (!IsNumber(event->Get("ts"))) return Complain("i event missing ts");
    } else if (ph->string == "M") {
      const Json* args = event->Get("args");
      if (args == nullptr || !args->Is(Json::Kind::kObject) ||
          !IsString(args->Get("name"))) {
        return Complain("M event missing args.name");
      }
    } else {
      return Complain("unknown event phase (expect X/i/M)");
    }
  }
  std::printf("trace ok: %zu events (%zu spans)\n", events->array.size(),
              spans);
  return 0;
}

/// MetricsRegistry export: {"counters":{name:int}, "gauges":{name:number},
/// "histograms":{name:{count,sum,max,mean,bounds[],buckets[]}}} with
/// len(buckets) == len(bounds) + 1 and count == sum of buckets.
int CheckMetrics(const Json& root) {
  if (!root.Is(Json::Kind::kObject)) return Complain("root is not an object");
  const Json* counters = root.Get("counters");
  const Json* gauges = root.Get("gauges");
  const Json* histograms = root.Get("histograms");
  if (counters == nullptr || !counters->Is(Json::Kind::kObject)) {
    return Complain("missing counters object");
  }
  if (gauges == nullptr || !gauges->Is(Json::Kind::kObject)) {
    return Complain("missing gauges object");
  }
  if (histograms == nullptr || !histograms->Is(Json::Kind::kObject)) {
    return Complain("missing histograms object");
  }
  for (const auto& [name, value] : counters->object) {
    if (!IsNumber(value.get()) || value->number < 0) {
      return Complain("counter is not a non-negative number");
    }
  }
  for (const auto& [name, value] : gauges->object) {
    if (!IsNumber(value.get())) return Complain("gauge is not a number");
  }
  for (const auto& [name, hist] : histograms->object) {
    if (!hist->Is(Json::Kind::kObject)) {
      return Complain("histogram is not an object");
    }
    for (const char* key : {"count", "sum", "max"}) {
      if (!IsNumber(hist->Get(key))) {
        return Complain("histogram missing count/sum/max");
      }
    }
    const Json* bounds = hist->Get("bounds");
    const Json* buckets = hist->Get("buckets");
    if (bounds == nullptr || !bounds->Is(Json::Kind::kArray) ||
        buckets == nullptr || !buckets->Is(Json::Kind::kArray)) {
      return Complain("histogram missing bounds/buckets arrays");
    }
    if (buckets->array.size() != bounds->array.size() + 1) {
      return Complain("histogram buckets size != bounds size + 1");
    }
    double bucket_total = 0;
    for (const JsonPtr& b : buckets->array) {
      if (!IsNumber(b.get())) return Complain("bucket is not a number");
      bucket_total += b->number;
    }
    if (bucket_total != hist->Get("count")->number) {
      return Complain("histogram count != sum of buckets");
    }
  }
  std::printf("metrics ok: %zu counters, %zu gauges, %zu histograms\n",
              counters->object.size(), gauges->object.size(),
              histograms->object.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3 || (std::strcmp(argv[1], "trace") != 0 &&
                    std::strcmp(argv[1], "metrics") != 0)) {
    std::fprintf(stderr, "usage: schema_check <trace|metrics> <file.json>\n");
    return 2;
  }
  std::ifstream in(argv[2], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[2]);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  Parser parser(buffer.str());
  const JsonPtr root = parser.Parse();
  if (root == nullptr) {
    std::fprintf(stderr, "JSON parse error: %s\n", parser.error().c_str());
    return 1;
  }
  return std::strcmp(argv[1], "trace") == 0 ? CheckTrace(*root)
                                            : CheckMetrics(*root);
}
